//! Exhaustive-interleaving verification of the workspace's concurrency
//! contracts (ISSUE 6 tentpole).
//!
//! Every test enumerates **all** schedules of its thread programs'
//! atomic sub-operations — no sampling, no real threads — and compares
//! each outcome against a serial replay on the real `mhg-obs` /
//! `mhg-par` code paths. Negative tests run deliberately broken variants
//! and assert the harness finds a diverging schedule, proving the
//! enumeration has teeth.

use mhg_race::hist::{record_steps, serial_snapshot, HistModel, TornCounter, TornOp};
use mhg_race::reduce::{bits_eq, merge, Scatter};
use mhg_race::{for_each_schedule, num_schedules, run_schedule};

/// Counter merge: each thread is a sequence of indivisible `fetch_add`
/// steps. Every interleaving of up to 3 threads must reach the serial
/// total (commutativity of addition ⇒ schedule-invariance).
#[test]
fn counter_fetch_add_is_schedule_invariant() {
    let per_thread: [Vec<u64>; 3] = [vec![1, 2, 3], vec![10, 20, 30], vec![100, 200, 300]];
    let serial: u64 = per_thread.iter().flatten().sum();
    let counts = [3, 3, 3];
    assert_eq!(num_schedules(&counts), 1_680);

    let mut explored = 0u64;
    for_each_schedule(&counts, |schedule| {
        let mut cell = 0u64;
        run_schedule(&mut cell, &per_thread, schedule, |cell, _t, v| {
            *cell += v; // one indivisible fetch_add
        });
        assert_eq!(cell, serial, "diverged on schedule {schedule:?}");
        explored += 1;
    });
    assert_eq!(explored, 1_680);
}

/// Histogram merge: threads interleaved at the granularity of
/// `record`'s four atomic sub-operations (bucket, count, sum, max).
/// Every schedule must match the serial replay of the *real*
/// `mhg_obs::Histogram`. Two shapes: three threads of one record each
/// (34 650 schedules) and two threads of two + one records (495),
/// covering bucket collisions, bucket boundaries (7 vs 8) and `u64::MAX`
/// (wrapping sum, max saturation).
#[test]
fn histogram_record_subops_are_schedule_invariant() {
    let shapes: [Vec<Vec<u64>>; 2] = [
        vec![vec![7], vec![8], vec![u64::MAX]],
        vec![vec![0, 7], vec![1_000]],
    ];
    let expected_counts = [34_650u64, 495];

    for (per_thread, want) in shapes.iter().zip(expected_counts) {
        let reference = serial_snapshot(per_thread);
        let steps: Vec<_> = per_thread.iter().map(|v| record_steps(v)).collect();
        let counts: Vec<usize> = steps.iter().map(Vec::len).collect();
        assert_eq!(num_schedules(&counts), want);

        let mut explored = 0u64;
        for_each_schedule(&counts, |schedule| {
            let mut model = HistModel::new();
            run_schedule(&mut model, &steps, schedule, |m, _t, op| m.apply(op));
            assert_eq!(
                model.snapshot(),
                reference,
                "diverged on schedule {schedule:?}"
            );
            explored += 1;
        });
        assert_eq!(explored, want);
    }
}

/// The harness must *detect* a real race: a counter whose increment is a
/// non-atomic load-then-store pair loses updates under some schedules.
#[test]
fn torn_counter_race_is_detected() {
    // Three threads, one increment each = one Load + one Store per thread.
    let steps: Vec<Vec<TornOp>> = (0..3).map(|_| vec![TornOp::Load, TornOp::Store]).collect();
    let counts = [2, 2, 2];
    assert_eq!(num_schedules(&counts), 90);

    let mut lost_updates = 0u64;
    let mut correct = 0u64;
    for_each_schedule(&counts, |schedule| {
        let mut state = TornCounter::default();
        run_schedule(&mut state, &steps, schedule, |s, t, op| s.apply(t, op));
        if state.cell == 3 {
            correct += 1;
        } else {
            assert!(state.cell < 3, "a torn counter can only lose updates");
            lost_updates += 1;
        }
    });
    // The fully serialized schedules (and only a minority overall) reach 3.
    assert!(correct >= 6, "serialized schedules must still be correct");
    assert!(
        lost_updates > 0,
        "harness failed to find the lost-update schedules of a torn counter"
    );
}

/// The shipped reduction contract: workers own disjoint *destination*
/// ranges (`mhg_par::split_range` over the destination span), so every
/// destination's sum is built by exactly one worker in input order.
/// Merging the partials in any completion order is bit-identical to the
/// serial replay, for 1–3 workers.
#[test]
fn dest_partitioned_reduction_is_completion_order_invariant() {
    // Values chosen so float addition is *non-associative* across them:
    // (1e8 + 1.0) + -1e8 = 0.0 but 1e8 + (1.0 + -1e8) = 1.0.
    let scatter = Scatter {
        indices: vec![0, 1, 0, 2, 0, 1, 2, 0],
        grad: vec![1.0e8, 3.0, 1.0, 0.5, -1.0e8, -3.0, 0.25, 2.5],
        span: 3,
    };
    let serial = scatter.serial();

    for workers in 1..=3 {
        let partials: Vec<_> = (0..workers)
            .map(|w| scatter.dest_partial(workers, w))
            .collect();
        // Every completion order = every permutation of the partials.
        let one_each: Vec<usize> = vec![1; workers];
        for_each_schedule(&one_each, |order| {
            let merged = merge(scatter.span, &partials, order);
            assert!(
                bits_eq(&merged, &serial),
                "dest-partitioned merge diverged: workers={workers} order={order:?} \
                 got {merged:?} want {serial:?}"
            );
        });
    }
}

/// The broken scheme the contract forbids: workers split the *input*
/// rows, spreading one destination's sum across partials, so the merge
/// (completion) order changes the float association. The harness must
/// find an order whose result differs bitwise from the serial replay.
#[test]
fn input_partitioned_reduction_depends_on_completion_order() {
    let scatter = Scatter {
        indices: vec![0, 0, 0],
        grad: vec![1.0e8, 1.0, -1.0e8],
        span: 1,
    };
    let serial = scatter.serial();
    assert_eq!(serial[0].to_bits(), 0.0f32.to_bits()); // (1e8 + 1) - 1e8 == 0.0

    let workers = 3;
    let partials: Vec<_> = (0..workers)
        .map(|w| scatter.input_partial(workers, w))
        .collect();
    let mut diverging = 0u32;
    let one_each: Vec<usize> = vec![1; workers];
    for_each_schedule(&one_each, |order| {
        let merged = merge(scatter.span, &partials, order);
        if !bits_eq(&merged, &serial) {
            diverging += 1;
        }
    });
    assert!(
        diverging > 0,
        "input-partitioned completion-order merge unexpectedly deterministic"
    );
}

/// `num_schedules` agrees with actual enumeration on every shape the
/// suite uses, and `for_each_schedule` produces distinct schedules.
#[test]
fn schedule_enumeration_is_complete_and_distinct() {
    for counts in [vec![2, 2], vec![3, 1], vec![2, 2, 2], vec![1, 1, 1]] {
        let mut seen = std::collections::BTreeSet::new();
        for_each_schedule(&counts, |s| {
            assert!(seen.insert(s.to_vec()), "duplicate schedule {s:?}");
        });
        assert_eq!(
            seen.len() as u64,
            num_schedules(&counts),
            "shape {counts:?}"
        );
    }
}
