//! Integration tests for the sharded, chunk-paged graph store: parity with
//! the in-RAM backend, paging-budget behaviour, and hostile-input handling
//! (bit flips, truncation, forged lengths, injected IO faults) — mirroring
//! the `persist.rs` hardening for the MHG1 snapshot format.

use std::path::PathBuf;

use mhg_graph::{
    persist, GraphBuilder, GraphStore, HealPolicy, MultiplexGraph, NodeId, RelationId, Schema,
    ShardError, ShardedCsr, ShardedCsrOptions, MANIFEST_FILE,
};

/// 12 users, 6 items, 2 relations populated by arithmetic rules.
fn fixture() -> MultiplexGraph {
    let mut schema = Schema::new();
    let user = schema.add_node_type("user");
    let item = schema.add_node_type("item");
    schema.add_relation("buy");
    schema.add_relation("view");
    let mut b = GraphBuilder::new(schema);
    b.add_nodes(user, 12);
    b.add_nodes(item, 6);
    for u in 0..12u32 {
        for i in 0..6u32 {
            if (u * 5 + i) % 3 == 0 {
                b.add_edge(NodeId(u), NodeId(12 + i), RelationId(0));
            }
            if (u + i * 7) % 4 == 1 {
                b.add_edge(NodeId(u), NodeId(12 + i), RelationId(1));
            }
        }
    }
    b.build()
}

/// Tiny caps: many shards, tiny pages, constant eviction pressure.
fn small_opts() -> ShardedCsrOptions {
    ShardedCsrOptions {
        shard_target_cap: 8,
        page_budget_bytes: 256,
        build_budget_bytes: 512,
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mhg_sharded_test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// All store files: the manifest plus every shard.
fn store_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            name == MANIFEST_FILE || name.ends_with(".shard")
        })
        .collect();
    files.sort();
    files
}

/// Opening + verifying must fail with a typed error (any variant but Io is
/// fine — the point is no panic, no garbage graph).
fn open_and_verify(dir: &PathBuf) -> Result<(), ShardError> {
    ShardedCsr::open(dir, small_opts())?.verify()
}

#[test]
fn neighbor_lists_and_snapshot_match_in_ram() {
    let ram = fixture();
    let dir = fresh_dir("parity");
    let sharded = ShardedCsr::build(&ram, &dir, small_opts()).unwrap();

    assert_eq!(GraphStore::num_nodes(&sharded), ram.num_nodes());
    assert_eq!(GraphStore::num_edges(&sharded), ram.num_edges());
    for r in ram.schema().relations() {
        for v in ram.nodes() {
            assert_eq!(GraphStore::degree(&sharded, v, r), ram.degree(v, r));
            let expect = ram.neighbors(v, r).to_vec();
            let got = sharded.with_neighbors(v, r, |ns| ns.to_vec());
            assert_eq!(got, expect, "node {v:?} relation {r:?}");
        }
    }
    for ty in ram.schema().node_types() {
        assert_eq!(
            GraphStore::nodes_of_type(&sharded, ty),
            ram.nodes_of_type(ty)
        );
    }
    // The generic MHG1 encoder sees both backends identically.
    assert_eq!(persist::encode(&ram), persist::encode(&sharded));
}

#[test]
fn reopen_without_build_is_identical() {
    let ram = fixture();
    let dir = fresh_dir("reopen");
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());
    let reopened = ShardedCsr::open(&dir, small_opts()).unwrap();
    reopened.verify().unwrap();
    assert_eq!(persist::encode(&ram), persist::encode(&reopened));
}

#[test]
fn paging_stays_inside_budget_and_evicts() {
    let ram = fixture();
    let dir = fresh_dir("paging");
    let sharded = ShardedCsr::build(&ram, &dir, small_opts()).unwrap();

    // Sweep all neighbor lists a few times in different orders to force
    // repeated page-ins.
    for pass in 0..3 {
        for r in ram.schema().relations() {
            for v in ram.nodes() {
                let v = if pass % 2 == 0 {
                    v
                } else {
                    NodeId(ram.num_nodes() as u32 - 1 - v.0)
                };
                sharded.with_neighbors(v, r, |ns| ns.len());
            }
        }
    }
    let stats = sharded.page_stats();
    assert!(stats.loads > 0, "no pages loaded: {stats:?}");
    assert!(stats.hits > 0, "cache never hit: {stats:?}");
    assert!(
        stats.evictions > 0,
        "budget never forced eviction: {stats:?}"
    );
    assert!(
        stats.peak_bytes <= small_opts().page_budget_bytes,
        "peak {} exceeded budget: {stats:?}",
        stats.peak_bytes
    );

    // The working set (page budget + resident metadata) undercuts the
    // on-disk size even at this toy scale — the property that lets a 10M
    // edge graph stream under a RAM cap below its file size.
    let on_disk = sharded.on_disk_bytes().unwrap();
    let working = small_opts().page_budget_bytes + sharded.resident_metadata_bytes();
    assert!(
        (working as u64) < on_disk,
        "working set {working} not below on-disk {on_disk}"
    );
}

#[test]
fn every_bit_flip_is_detected() {
    let ram = fixture();
    let dir = fresh_dir("bitflip");
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());

    for file in store_files(&dir) {
        let pristine = std::fs::read(&file).unwrap();
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                let mut corrupt = pristine.clone();
                corrupt[byte] ^= 1 << bit;
                std::fs::write(&file, &corrupt).unwrap();
                assert!(
                    open_and_verify(&dir).is_err(),
                    "flip of {file:?} byte {byte} bit {bit} went undetected"
                );
            }
        }
        std::fs::write(&file, &pristine).unwrap();
    }
    open_and_verify(&dir).unwrap();
}

#[test]
fn truncation_at_every_cut_is_detected() {
    let ram = fixture();
    let dir = fresh_dir("truncate");
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());

    for file in store_files(&dir) {
        let pristine = std::fs::read(&file).unwrap();
        for cut in 0..pristine.len() {
            std::fs::write(&file, &pristine[..cut]).unwrap();
            assert!(
                open_and_verify(&dir).is_err(),
                "truncating {file:?} to {cut} bytes went undetected"
            );
        }
        std::fs::write(&file, &pristine).unwrap();
    }
    open_and_verify(&dir).unwrap();
}

#[test]
fn forged_target_count_is_rejected_before_allocation() {
    let ram = fixture();
    let dir = fresh_dir("hostile");
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());

    // Forge an absurd target count in one shard header and re-sign the file
    // so the checksum passes: the length guards themselves must reject it,
    // without attempting a 16 GiB allocation.
    let shard = store_files(&dir)
        .into_iter()
        .find(|p| p.extension().is_some_and(|e| e == "shard"))
        .unwrap();
    let mut bytes = std::fs::read(&shard).unwrap();
    // Layout: magic(4) version(2) relation(2) shard(4) start(4) end(4)
    // then the u32 target count at offset 20.
    bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
    let body = bytes.len() - 8;
    let sum = mhg_ckpt::fnv1a64(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&shard, &bytes).unwrap();

    let err = open_and_verify(&dir).unwrap_err();
    assert!(
        !matches!(err, ShardError::ChecksumMismatch),
        "length guard should fire before (re-signed) checksum: {err}"
    );
}

#[test]
fn io_read_fault_surfaces_on_open() {
    let _guard = mhg_faults::test_guard();
    let ram = fixture();
    let dir = fresh_dir("fault_open");
    mhg_faults::clear();
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());

    mhg_faults::install(mhg_faults::FaultPlan::new().inject(mhg_faults::FaultSite::IoRead, 1));
    let err = match ShardedCsr::open(&dir, small_opts()) {
        Ok(_) => panic!("open should fail under the injected IoRead fault"),
        Err(e) => e,
    };
    mhg_faults::clear();
    assert!(matches!(err, ShardError::Io(_)), "expected Io, got {err}");
}

#[test]
fn io_read_fault_surfaces_on_page_load_without_retries() {
    let _guard = mhg_faults::test_guard();
    let ram = fixture();
    let dir = fresh_dir("fault_page");
    mhg_faults::clear();
    // Retries disabled: the injected error must surface typed through the
    // fallible accessor (the infallible trait path would abort by contract
    // instead of returning garbage). With no heal source, the failed shard
    // is quarantined, so the *first* access shows the underlying Io error
    // wrapped in the repair outcome. Two scheduled occurrences: the repair
    // stage re-checks the file before rebuilding (a shard healthy again
    // after a transient fault is released, not quarantined), so the
    // quarantine path needs the pre-check read to fail too.
    let sharded = ShardedCsr::build(&ram, &dir, small_opts())
        .unwrap()
        .with_heal_policy(HealPolicy {
            read_attempts: 1,
            backoff_base_ns: 0,
            repair_write_attempts: 1,
        });

    let v = NodeId(0);
    let r = RelationId(0);
    assert!(ram.degree(v, r) > 0, "fixture node must have neighbors");
    mhg_faults::install(
        mhg_faults::FaultPlan::new()
            .inject(mhg_faults::FaultSite::IoRead, 1)
            .inject(mhg_faults::FaultSite::IoRead, 2),
    );
    let res = sharded.try_with_neighbors(v, r, |ns| ns.len());
    mhg_faults::clear();
    let err = res.unwrap_err();
    assert!(
        matches!(err, ShardError::Quarantined { .. }),
        "expected quarantine after exhausted read, got {err}"
    );
    assert_eq!(sharded.quarantined().len(), 1);

    // Quarantine is sticky: the shard stays dead until repaired...
    let err = sharded.try_with_neighbors(v, r, |ns| ns.len()).unwrap_err();
    assert!(matches!(err, ShardError::Quarantined { .. }));
    // ...and `repair` lifts it: the file on disk was never damaged (the
    // fault was transient), so the fsck pass finds nothing corrupt and the
    // shard is released once it verifies clean.
    assert!(sharded.verify_all().is_clean());
    let report = sharded.repair();
    assert!(report.is_complete());
    assert!(sharded.quarantined().is_empty());
    let len = sharded.try_with_neighbors(v, r, |ns| ns.len()).unwrap();
    assert_eq!(len, ram.degree(v, r));
}

#[test]
fn transient_read_faults_are_absorbed_by_retry() {
    let _guard = mhg_faults::test_guard();
    let ram = fixture();
    let dir = fresh_dir("fault_retry");
    mhg_faults::clear();
    let sharded = ShardedCsr::build(&ram, &dir, small_opts())
        .unwrap()
        .with_heal_policy(HealPolicy {
            read_attempts: 3,
            backoff_base_ns: 0,
            repair_write_attempts: 1,
        });

    let v = NodeId(0);
    let r = RelationId(0);
    // Two consecutive faults on the same page-in (one io_read, one
    // shard_read): the third attempt succeeds, no error escapes.
    mhg_faults::install(
        mhg_faults::FaultPlan::new()
            .inject(mhg_faults::FaultSite::IoRead, 1)
            .inject(mhg_faults::FaultSite::ShardRead, 2),
    );
    let len = sharded.try_with_neighbors(v, r, |ns| ns.len());
    mhg_faults::clear();
    assert_eq!(len.unwrap(), ram.degree(v, r));
    assert_eq!(sharded.heal_stats().retries, 2);
    assert!(sharded.quarantined().is_empty());
}
