//! Self-healing integration tests for the sharded store: transparent
//! rebuild-from-source repair under bit flips, truncation and deleted
//! files, fsck reporting, quarantine of unrepairable shards, and the
//! deterministic fake-clock backoff.

use std::path::PathBuf;
use std::sync::Arc;

use mhg_graph::{
    GraphBuilder, GraphStore, HealPolicy, MultiplexGraph, NodeId, RelationId, Schema, ShardError,
    ShardedCsr, ShardedCsrOptions,
};
use mhg_obs::Obs;

/// 12 users, 6 items, 2 relations populated by arithmetic rules (the same
/// fixture as `sharded.rs`, so shard layouts are well exercised).
fn fixture() -> MultiplexGraph {
    let mut schema = Schema::new();
    let user = schema.add_node_type("user");
    let item = schema.add_node_type("item");
    schema.add_relation("buy");
    schema.add_relation("view");
    let mut b = GraphBuilder::new(schema);
    b.add_nodes(user, 12);
    b.add_nodes(item, 6);
    for u in 0..12u32 {
        for i in 0..6u32 {
            if (u * 5 + i) % 3 == 0 {
                b.add_edge(NodeId(u), NodeId(12 + i), RelationId(0));
            }
            if (u + i * 7) % 4 == 1 {
                b.add_edge(NodeId(u), NodeId(12 + i), RelationId(1));
            }
        }
    }
    b.build()
}

fn small_opts() -> ShardedCsrOptions {
    ShardedCsrOptions {
        shard_target_cap: 8,
        page_budget_bytes: 256,
        build_budget_bytes: 512,
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mhg_heal_test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shard_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "shard"))
        .collect();
    files.sort();
    files
}

/// No-backoff policy so hostile-input sweeps stay fast.
fn fast_policy() -> HealPolicy {
    HealPolicy {
        backoff_base_ns: 0,
        ..HealPolicy::default()
    }
}

/// Opens the store with the fixture attached as heal source.
fn healing_store(ram: &MultiplexGraph, dir: &PathBuf) -> ShardedCsr {
    ShardedCsr::open(dir, small_opts())
        .unwrap()
        .with_heal_source(Arc::new(ram.clone()))
        .with_heal_policy(fast_policy())
}

/// Full sweep asserting parity with the in-RAM fixture.
fn assert_parity(store: &ShardedCsr, ram: &MultiplexGraph) {
    for r in ram.schema().relations() {
        for v in ram.nodes() {
            let expect = ram.neighbors(v, r).to_vec();
            let got = store.with_neighbors(v, r, |ns| ns.to_vec());
            assert_eq!(got, expect, "node {v:?} relation {r:?}");
        }
    }
}

#[test]
fn bit_flipped_shards_are_rebuilt_transparently() {
    let _guard = mhg_faults::test_guard();
    mhg_faults::clear();
    let ram = fixture();
    let dir = fresh_dir("bitflip_heal");
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());

    // Damage every shard file: flip one payload bit each.
    let files = shard_files(&dir);
    assert!(files.len() > 1, "fixture must produce several shards");
    for file in &files {
        let mut bytes = std::fs::read(file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(file, &bytes).unwrap();
    }

    let store = healing_store(&ram, &dir);
    let report = store.verify_all();
    assert_eq!(report.checked, files.len());
    assert_eq!(report.corrupt.len(), files.len(), "every shard is damaged");

    // Plain trait access repairs each shard on first touch — neighbor
    // lists are bit-identical to the clean build.
    assert_parity(&store, &ram);
    assert_eq!(store.heal_stats().repairs as usize, files.len());
    assert!(store.quarantined().is_empty());

    // Every repaired file re-verifies from disk, and a fresh open (no heal
    // source at all) sees a fully healthy store.
    assert!(store.verify_all().is_clean());
    ShardedCsr::open(&dir, small_opts())
        .unwrap()
        .verify()
        .unwrap();
}

#[test]
fn truncated_and_missing_shards_are_rebuilt() {
    let _guard = mhg_faults::test_guard();
    mhg_faults::clear();
    let ram = fixture();
    let dir = fresh_dir("truncate_heal");
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());

    let files = shard_files(&dir);
    assert!(files.len() >= 2);
    // Truncate the first shard to half, delete the last one entirely.
    let bytes = std::fs::read(&files[0]).unwrap();
    std::fs::write(&files[0], &bytes[..bytes.len() / 2]).unwrap();
    std::fs::remove_file(files.last().unwrap()).unwrap();

    let store = healing_store(&ram, &dir);
    assert_eq!(store.verify_all().corrupt.len(), 2);

    // An explicit fsck+repair run rebuilds both without touching the rest.
    let report = store.repair();
    assert!(report.is_complete(), "failed: {:?}", report.failed);
    assert_eq!(report.repaired.len(), 2);
    assert!(store.verify_all().is_clean());
    assert_parity(&store, &ram);
}

#[test]
fn corruption_without_source_quarantines() {
    let _guard = mhg_faults::test_guard();
    mhg_faults::clear();
    let ram = fixture();
    let dir = fresh_dir("no_source");
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());

    let files = shard_files(&dir);
    let mut bytes = std::fs::read(&files[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&files[0], &bytes).unwrap();

    let store = ShardedCsr::open(&dir, small_opts())
        .unwrap()
        .with_heal_policy(fast_policy());
    let err = store.verify().unwrap_err();
    assert!(
        matches!(err, ShardError::Quarantined { .. }),
        "expected quarantine, got {err}"
    );
    assert_eq!(store.quarantined().len(), 1);
    assert!(store.heal_stats().repair_failures >= 1);
    // Repair without a source cannot rebuild: the shard stays quarantined.
    let report = store.repair();
    assert!(!report.is_complete());
    assert_eq!(store.quarantined().len(), 1);
}

#[test]
fn drifted_source_is_rejected_not_written() {
    let _guard = mhg_faults::test_guard();
    mhg_faults::clear();
    let ram = fixture();
    let dir = fresh_dir("drift");
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());

    let files = shard_files(&dir);
    let pristine = std::fs::read(&files[0]).unwrap();
    let mut bytes = pristine.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&files[0], &bytes).unwrap();

    // A source whose edges drifted from the manifest must be rejected by
    // the degree cross-check — a wrong rebuild is worse than none.
    let drifted = {
        let mut schema = Schema::new();
        let user = schema.add_node_type("user");
        let item = schema.add_node_type("item");
        schema.add_relation("buy");
        schema.add_relation("view");
        let mut b = GraphBuilder::new(schema);
        b.add_nodes(user, 12);
        b.add_nodes(item, 6);
        // A star on item 12: per-node degrees disagree with the fixture.
        for u in 0..12u32 {
            b.add_edge(NodeId(u), NodeId(12), RelationId(0));
        }
        b.build()
    };
    let store = ShardedCsr::open(&dir, small_opts())
        .unwrap()
        .with_heal_source(Arc::new(drifted))
        .with_heal_policy(fast_policy());
    let report = store.repair();
    assert!(!report.is_complete());
    assert!(report.failed[0].error.contains("contradicts"));
    assert!(
        store.quarantined().is_empty(),
        "repair() fsck path does not quarantine"
    );
    // The damaged file was not overwritten with drifted data.
    assert_eq!(std::fs::read(&files[0]).unwrap(), bytes);
}

#[test]
fn backoff_is_deterministic_on_a_fake_clock_and_counted() {
    let _guard = mhg_faults::test_guard();
    mhg_faults::clear();
    let ram = fixture();
    let dir = fresh_dir("fake_clock");
    drop(ShardedCsr::build(&ram, &dir, small_opts()).unwrap());

    let obs = Obs::deterministic(1_000);
    let store = ShardedCsr::open(&dir, small_opts())
        .unwrap()
        .with_heal_source(Arc::new(ram.clone()))
        .with_heal_policy(HealPolicy {
            read_attempts: 3,
            backoff_base_ns: 50_000, // 50 fake-clock steps, then 100
            repair_write_attempts: 3,
        })
        .with_heal_obs(obs.clone());

    mhg_faults::install(
        mhg_faults::FaultPlan::new()
            .inject(mhg_faults::FaultSite::ShardRead, 1)
            .inject(mhg_faults::FaultSite::ShardDecode, 2),
    );
    assert_parity(&store, &ram);
    mhg_faults::clear();
    assert_eq!(store.heal_stats().retries, 2);

    // The retries surfaced as obs counters in the JSONL metrics stream.
    let jsonl = obs.render_jsonl();
    assert!(
        jsonl.contains("graph/shard_retries"),
        "retry counter missing from metrics: {jsonl}"
    );
}
