//! Property-based invariants for the graph substrate.

use mhg_graph::{persist, GraphBuilder, GraphStats, MultiplexGraph, NodeId, RelationId, Schema};
use proptest::prelude::*;

/// A random multiplex graph spec: node counts per 2 types, and edges.
#[derive(Debug, Clone)]
struct Spec {
    type_counts: Vec<usize>,
    edges: Vec<(usize, usize, usize)>, // (u, v, relation) by raw index
    num_relations: usize,
}

fn spec() -> impl Strategy<Value = Spec> {
    (1usize..=3, 1usize..=3).prop_flat_map(|(num_types, num_relations)| {
        proptest::collection::vec(1usize..=6, num_types).prop_flat_map(move |type_counts| {
            let total: usize = type_counts.iter().sum();
            let edge = (0..total, 0..total, 0..num_relations);
            proptest::collection::vec(edge, 0..30).prop_map(move |edges| Spec {
                type_counts: type_counts.clone(),
                edges,
                num_relations,
            })
        })
    })
}

fn build(spec: &Spec) -> MultiplexGraph {
    let mut schema = Schema::new();
    let types: Vec<_> = (0..spec.type_counts.len())
        .map(|i| schema.add_node_type(&format!("t{i}")))
        .collect();
    for r in 0..spec.num_relations {
        schema.add_relation(&format!("r{r}"));
    }
    let mut b = GraphBuilder::new(schema);
    for (ti, &count) in spec.type_counts.iter().enumerate() {
        b.add_nodes(types[ti], count);
    }
    let total: usize = spec.type_counts.iter().sum();
    for &(u, v, r) in &spec.edges {
        if u != v && u < total && v < total {
            b.add_edge(NodeId(u as u32), NodeId(v as u32), RelationId(r as u16));
        }
    }
    b.build()
}

proptest! {
    #[test]
    fn handshake_lemma_per_relation(s in spec()) {
        let g = build(&s);
        for r in g.schema().relations() {
            let degree_sum: usize = g.nodes().map(|v| g.degree(v, r)).sum();
            prop_assert_eq!(degree_sum, 2 * g.num_edges_in(r));
        }
    }

    #[test]
    fn neighbor_symmetry(s in spec()) {
        let g = build(&s);
        for r in g.schema().relations() {
            for u in g.nodes() {
                for &v in g.neighbors(u, r) {
                    prop_assert!(g.has_edge(v, u, r), "asymmetric edge {u:?}-{v:?}");
                }
            }
        }
    }

    #[test]
    fn neighbors_sorted_and_unique(s in spec()) {
        let g = build(&s);
        for r in g.schema().relations() {
            for u in g.nodes() {
                let ns = g.neighbors(u, r);
                prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
            }
        }
    }

    #[test]
    fn nodes_partitioned_by_type(s in spec()) {
        let g = build(&s);
        let total: usize = g
            .schema()
            .node_types()
            .map(|t| g.nodes_of_type(t).len())
            .sum();
        prop_assert_eq!(total, g.num_nodes());
        for t in g.schema().node_types() {
            for &v in g.nodes_of_type(t) {
                prop_assert_eq!(g.node_type(v), t);
            }
        }
    }

    #[test]
    fn induced_subgraph_preserves_kept_relations(s in spec()) {
        let g = build(&s);
        if g.schema().num_relations() < 2 {
            return Ok(());
        }
        let keep: Vec<RelationId> = g.schema().relations().take(1).collect();
        let sub = g.induce_relations(&keep);
        prop_assert_eq!(sub.num_nodes(), g.num_nodes());
        prop_assert_eq!(sub.num_edges(), g.num_edges_in(keep[0]));
        for u in g.nodes() {
            prop_assert_eq!(sub.neighbors(u, RelationId(0)), g.neighbors(u, keep[0]));
        }
    }

    #[test]
    fn persistence_roundtrip(s in spec()) {
        let g = build(&s);
        let bytes = persist::encode(&g);
        let g2 = persist::decode(&bytes).expect("decode");
        prop_assert_eq!(g.num_nodes(), g2.num_nodes());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for u in g.nodes() {
            prop_assert_eq!(g.node_type(u), g2.node_type(u));
            for r in g.schema().relations() {
                prop_assert_eq!(g.neighbors(u, r), g2.neighbors(u, r));
            }
        }
    }

    #[test]
    fn stats_consistency(s in spec()) {
        let g = build(&s);
        let st = GraphStats::compute(&g);
        prop_assert_eq!(st.num_nodes, g.num_nodes());
        prop_assert_eq!(st.num_edges, g.num_edges());
        prop_assert_eq!(st.edges_per_relation.iter().sum::<usize>(), g.num_edges());
        prop_assert!((0.0..=1.0).contains(&st.multiplex_pair_fraction));
        let max_possible = g.num_nodes().saturating_sub(1) * g.schema().num_relations();
        prop_assert!(st.max_degree <= max_possible);
    }

    #[test]
    fn active_relations_matches_degree(s in spec()) {
        let g = build(&s);
        for v in g.nodes() {
            let active = g.active_relations(v);
            for r in g.schema().relations() {
                prop_assert_eq!(active.contains(&r), g.degree(v, r) > 0);
            }
        }
    }
}
