//! Metapath schemes (paper Def. 3 & 4).
//!
//! A metapath scheme is an alternating sequence of node types and relations,
//! `o_0 -r_1-> o_1 -r_2-> … -r_n-> o_n`. The paper distinguishes
//! *intra-relationship* schemes (all relations equal) from
//! *inter-relationship* schemes. Schemes can be parsed from compact strings
//! such as `"U-A-U"` given a mapping from letters to node types.

use std::fmt;

use crate::store::GraphStore;
use crate::{NodeId, NodeTypeId, RelationId, Schema};

/// A metapath scheme `P = o_0 -r_1-> o_1 … -r_n-> o_n`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MetapathScheme {
    node_types: Vec<NodeTypeId>,
    relations: Vec<RelationId>,
}

impl MetapathScheme {
    /// Creates a scheme from explicit type and relation sequences.
    ///
    /// # Panics
    ///
    /// Panics unless `node_types.len() == relations.len() + 1` and the path
    /// has at least one hop.
    pub fn new(node_types: Vec<NodeTypeId>, relations: Vec<RelationId>) -> Self {
        assert!(
            !relations.is_empty(),
            "a metapath scheme needs at least one hop"
        );
        assert_eq!(
            node_types.len(),
            relations.len() + 1,
            "need one more node type than relations"
        );
        Self {
            node_types,
            relations,
        }
    }

    /// Creates an intra-relationship scheme: every hop uses relation `r`.
    pub fn intra(node_types: Vec<NodeTypeId>, r: RelationId) -> Self {
        assert!(!node_types.is_empty(), "empty metapath");
        let hops = node_types.len() - 1;
        Self::new(node_types, vec![r; hops])
    }

    /// Parses a compact form such as `"U-I-U"` under one relation.
    ///
    /// Each dash-separated token is looked up via `lookup` (mapping token →
    /// node-type name in `schema`).
    ///
    /// # Panics
    ///
    /// Panics on unknown tokens.
    pub fn parse_intra(
        spec: &str,
        r: RelationId,
        schema: &Schema,
        lookup: impl Fn(&str) -> &'static str,
    ) -> Self {
        let types: Vec<NodeTypeId> = spec
            .split('-')
            .map(|tok| {
                let name = lookup(tok);
                schema
                    .node_type_id(name)
                    .unwrap_or_else(|| panic!("unknown node type {name:?} for token {tok:?}"))
            })
            .collect();
        Self::intra(types, r)
    }

    /// Number of hops `|P|`.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Always false — schemes have ≥ 1 hop by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The node-type sequence.
    pub fn node_types(&self) -> &[NodeTypeId] {
        &self.node_types
    }

    /// The relation sequence.
    pub fn relations(&self) -> &[RelationId] {
        &self.relations
    }

    /// The starting node type `o_0`.
    pub fn source_type(&self) -> NodeTypeId {
        self.node_types[0]
    }

    /// The terminal node type `o_n`.
    pub fn target_type(&self) -> NodeTypeId {
        *self.node_types.last().unwrap()
    }

    /// Whether all hops share a relation (paper Def. 3:
    /// intra-relationship scheme).
    pub fn is_intra_relationship(&self) -> bool {
        self.relations.windows(2).all(|w| w[0] == w[1])
    }

    /// Whether the scheme is symmetric (reads the same reversed) — e.g.
    /// `U-I-U` is, `D-M-A` is not.
    pub fn is_symmetric(&self) -> bool {
        let n = self.node_types.len();
        (0..n).all(|i| self.node_types[i] == self.node_types[n - 1 - i])
            && self.relations.iter().eq(self.relations.iter().rev())
    }

    /// Validates the scheme against a graph's schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), String> {
        for &t in &self.node_types {
            if t.index() >= schema.num_node_types() {
                return Err(format!("node type {t:?} not in schema"));
            }
        }
        for &r in &self.relations {
            if r.index() >= schema.num_relations() {
                return Err(format!("relation {r:?} not in schema"));
            }
        }
        Ok(())
    }

    /// Checks whether a concrete node sequence is an instance of this scheme
    /// in `graph` (paper Def. 4). Works over any [`GraphStore`] backend —
    /// in-RAM or sharded — with identical results.
    pub fn matches_instance<G: GraphStore>(&self, graph: &G, nodes: &[NodeId]) -> bool {
        if nodes.len() != self.node_types.len() {
            return false;
        }
        for (v, &ty) in nodes.iter().zip(&self.node_types) {
            if graph.node_type(*v) != ty {
                return false;
            }
        }
        for (w, &r) in nodes.windows(2).zip(&self.relations) {
            if !graph.has_edge(w[0], w[1], r) {
                return false;
            }
        }
        true
    }

    /// Human-readable form using schema names, e.g.
    /// `user -like-> video -like-> user`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a MetapathScheme, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.1.node_type_name(self.0.node_types[0]))?;
                for (i, &r) in self.0.relations.iter().enumerate() {
                    write!(
                        f,
                        " -{}-> {}",
                        self.1.relation_name(r),
                        self.1.node_type_name(self.0.node_types[i + 1])
                    )?;
                }
                Ok(())
            }
        }
        D(self, schema)
    }
}

impl fmt::Debug for MetapathScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.node_types[0].0)?;
        for (i, r) in self.relations.iter().enumerate() {
            write!(f, "-r{}-t{}", r.0, self.node_types[i + 1].0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, MultiplexGraph};

    fn uvu_setup() -> (MultiplexGraph, MetapathScheme) {
        let mut schema = Schema::new();
        let user = schema.add_node_type("user");
        let video = schema.add_node_type("video");
        let like = schema.add_relation("like");
        let comment = schema.add_relation("comment");

        let mut b = GraphBuilder::new(schema);
        let u0 = b.add_node(user);
        let u1 = b.add_node(user);
        let v = b.add_node(video);
        b.add_edge(u0, v, like);
        b.add_edge(u1, v, like);
        b.add_edge(u0, v, comment);
        let g = b.build();
        let scheme = MetapathScheme::intra(vec![user, video, user], like);
        (g, scheme)
    }

    #[test]
    fn intra_detection() {
        let (_, scheme) = uvu_setup();
        assert!(scheme.is_intra_relationship());
        assert_eq!(scheme.len(), 2);

        let inter = MetapathScheme::new(
            vec![NodeTypeId(0), NodeTypeId(1), NodeTypeId(0)],
            vec![RelationId(0), RelationId(1)],
        );
        assert!(!inter.is_intra_relationship());
    }

    #[test]
    fn symmetry() {
        let (_, scheme) = uvu_setup();
        assert!(scheme.is_symmetric());
        let asym = MetapathScheme::intra(vec![NodeTypeId(0), NodeTypeId(1)], RelationId(0));
        assert!(!asym.is_symmetric());
    }

    #[test]
    fn instance_matching() {
        let (g, scheme) = uvu_setup();
        let (u0, u1, v) = (NodeId(0), NodeId(1), NodeId(2));
        assert!(scheme.matches_instance(&g, &[u0, v, u1]));
        assert!(scheme.matches_instance(&g, &[u0, v, u0])); // revisit allowed
        assert!(!scheme.matches_instance(&g, &[u0, u1, v])); // type mismatch
        assert!(!scheme.matches_instance(&g, &[u0, v])); // length mismatch
    }

    #[test]
    fn instance_respects_relation() {
        let (g, _) = uvu_setup();
        let schema = g.schema();
        let user = schema.node_type_id("user").unwrap();
        let video = schema.node_type_id("video").unwrap();
        let comment = schema.relation_id("comment").unwrap();
        let scheme = MetapathScheme::intra(vec![user, video, user], comment);
        // u1 has no comment edge, so u0-v-u1 is not a comment instance.
        assert!(!scheme.matches_instance(&g, &[NodeId(0), NodeId(2), NodeId(1)]));
    }

    #[test]
    fn validate_against_schema() {
        let (g, scheme) = uvu_setup();
        assert!(scheme.validate(g.schema()).is_ok());
        let bad = MetapathScheme::intra(vec![NodeTypeId(9), NodeTypeId(9)], RelationId(0));
        assert!(bad.validate(g.schema()).is_err());
    }

    #[test]
    fn display_form() {
        let (g, scheme) = uvu_setup();
        assert_eq!(
            scheme.display(g.schema()).to_string(),
            "user -like-> video -like-> user"
        );
    }

    #[test]
    fn parse_intra_tokens() {
        let (g, _) = uvu_setup();
        let like = g.schema().relation_id("like").unwrap();
        let scheme = MetapathScheme::parse_intra("U-V-U", like, g.schema(), |t| match t {
            "U" => "user",
            "V" => "video",
            other => panic!("unknown token {other}"),
        });
        assert_eq!(scheme.len(), 2);
        assert!(scheme.is_symmetric());
    }
}
