//! Graph statistics — the numbers reported in the paper's Table II.

use std::fmt;

use crate::{MultiplexGraph, RelationId};

/// Summary statistics of a multiplex heterogeneous graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_nodes: usize,
    /// `|E|` (undirected, summed over relations).
    pub num_edges: usize,
    /// `|O|`.
    pub num_node_types: usize,
    /// `|R|`.
    pub num_relations: usize,
    /// Undirected edge count per relation, in relation-id order.
    pub edges_per_relation: Vec<usize>,
    /// Node count per node type, in type-id order.
    pub nodes_per_type: Vec<usize>,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Fraction of connected node pairs linked under ≥ 2 relations — a
    /// direct measure of the multiplexity property.
    pub multiplex_pair_fraction: f64,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(graph: &MultiplexGraph) -> Self {
        let schema = graph.schema();
        let edges_per_relation: Vec<usize> =
            schema.relations().map(|r| graph.num_edges_in(r)).collect();
        let nodes_per_type: Vec<usize> = schema
            .node_types()
            .map(|t| graph.nodes_of_type(t).len())
            .collect();

        let mut max_degree = 0;
        let mut degree_sum = 0usize;
        for v in graph.nodes() {
            let d = graph.total_degree(v);
            max_degree = max_degree.max(d);
            degree_sum += d;
        }

        // Count pairs connected under ≥2 relations by scanning the sparsest
        // relation's edges against the others.
        let mut multiplex_pairs = 0usize;
        let mut connected_pairs = 0usize;
        let relations: Vec<RelationId> = schema.relations().collect();
        // Collect each undirected pair once across relations.
        let mut seen: std::collections::BTreeMap<(u32, u32), u32> =
            std::collections::BTreeMap::new();
        for &r in &relations {
            for (u, v) in graph.edges_in(r) {
                *seen.entry((u.0, v.0)).or_insert(0) += 1;
            }
        }
        for (_, count) in seen {
            connected_pairs += 1;
            if count >= 2 {
                multiplex_pairs += 1;
            }
        }

        Self {
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_edges(),
            num_node_types: schema.num_node_types(),
            num_relations: schema.num_relations(),
            edges_per_relation,
            nodes_per_type,
            mean_degree: degree_sum as f64 / graph.num_nodes().max(1) as f64,
            max_degree,
            multiplex_pair_fraction: multiplex_pairs as f64 / connected_pairs.max(1) as f64,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "|V|={} |E|={} |O|={} |R|={}",
            self.num_nodes, self.num_edges, self.num_node_types, self.num_relations
        )?;
        writeln!(f, "nodes/type: {:?}", self.nodes_per_type)?;
        writeln!(f, "edges/relation: {:?}", self.edges_per_relation)?;
        write!(
            f,
            "mean degree {:.2}, max degree {}, multiplex pairs {:.1}%",
            self.mean_degree,
            self.max_degree,
            100.0 * self.multiplex_pair_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Schema};

    #[test]
    fn stats_on_tiny_graph() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r0 = schema.add_relation("a");
        let r1 = schema.add_relation("b");
        let mut b = GraphBuilder::new(schema);
        let n0 = b.add_node(t);
        let n1 = b.add_node(t);
        let n2 = b.add_node(t);
        b.add_edge(n0, n1, r0);
        b.add_edge(n0, n1, r1); // multiplex pair
        b.add_edge(n1, n2, r0);
        let g = b.build();

        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.edges_per_relation, vec![2, 1]);
        assert_eq!(s.nodes_per_type, vec![3]);
        assert_eq!(s.max_degree, 3); // n1: two r0 + one r1
        assert!((s.multiplex_pair_fraction - 0.5).abs() < 1e-9);
        assert!((s.mean_degree - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_key_counts() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r = schema.add_relation("a");
        let mut b = GraphBuilder::new(schema);
        let n0 = b.add_node(t);
        let n1 = b.add_node(t);
        b.add_edge(n0, n1, r);
        let s = GraphStats::compute(&b.build());
        let text = s.to_string();
        assert!(text.contains("|V|=2"));
        assert!(text.contains("|E|=1"));
    }
}
