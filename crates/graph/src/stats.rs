//! Graph statistics — the numbers reported in the paper's Table II.

use std::fmt;

use crate::store::GraphStore;
use crate::NodeId;

/// Summary statistics of a multiplex heterogeneous graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_nodes: usize,
    /// `|E|` (undirected, summed over relations).
    pub num_edges: usize,
    /// `|O|`.
    pub num_node_types: usize,
    /// `|R|`.
    pub num_relations: usize,
    /// Undirected edge count per relation, in relation-id order.
    pub edges_per_relation: Vec<usize>,
    /// Node count per node type, in type-id order.
    pub nodes_per_type: Vec<usize>,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Mean degree per relation, in relation-id order.
    pub mean_degree_per_relation: Vec<f64>,
    /// Maximum degree per relation, in relation-id order.
    pub max_degree_per_relation: Vec<usize>,
    /// Fraction of connected node pairs linked under ≥ 2 relations — a
    /// direct measure of the multiplexity property.
    pub multiplex_pair_fraction: f64,
}

impl GraphStats {
    /// Computes statistics for any graph store.
    ///
    /// The degree distribution (total and per-relation mean/max) comes from
    /// a single pass over the CSR offsets — `degree()` is offset
    /// arithmetic, so no neighbor list is materialised or paged in for it.
    /// The multiplexity fraction streams one node's neighborhood at a time
    /// into a reused scratch buffer instead of building a global pair map,
    /// so peak memory is bounded by the maximum degree, not `|E|`.
    pub fn compute<G: GraphStore>(graph: &G) -> Self {
        let schema = graph.schema();
        let num_nodes = graph.num_nodes();
        let num_relations = schema.num_relations();
        let edges_per_relation: Vec<usize> =
            schema.relations().map(|r| graph.num_edges_in(r)).collect();
        let nodes_per_type: Vec<usize> = schema
            .node_types()
            .map(|t| graph.nodes_of_type(t).len())
            .collect();

        // One pass over the offsets: total and per-relation degree stats.
        let mut max_degree = 0usize;
        let mut degree_sum = 0usize;
        let mut rel_max = vec![0usize; num_relations];
        let mut rel_sum = vec![0usize; num_relations];
        for v in graph.node_id_range().map(NodeId) {
            let mut total = 0usize;
            for r in schema.relations() {
                let d = graph.degree(v, r);
                rel_max[r.index()] = rel_max[r.index()].max(d);
                rel_sum[r.index()] += d;
                total += d;
            }
            max_degree = max_degree.max(total);
            degree_sum += total;
        }
        let denom = num_nodes.max(1) as f64;
        let mean_degree_per_relation: Vec<f64> =
            rel_sum.iter().map(|&s| s as f64 / denom).collect();

        // Multiplexity fraction without a global pair map: for each node,
        // gather its forward neighbors (u > v) across relations into a
        // scratch buffer; after sorting, a run of length k is one pair
        // connected under k relations (per-relation lists are deduplicated).
        let mut multiplex_pairs = 0usize;
        let mut connected_pairs = 0usize;
        let mut scratch: Vec<NodeId> = Vec::new();
        for v in graph.node_id_range().map(NodeId) {
            scratch.clear();
            for r in schema.relations() {
                graph.with_neighbors(v, r, |ns| {
                    let from = ns.partition_point(|&u| u <= v);
                    scratch.extend_from_slice(&ns[from..]);
                });
            }
            scratch.sort_unstable();
            let mut i = 0;
            while i < scratch.len() {
                let mut j = i + 1;
                while j < scratch.len() && scratch[j] == scratch[i] {
                    j += 1;
                }
                connected_pairs += 1;
                if j - i >= 2 {
                    multiplex_pairs += 1;
                }
                i = j;
            }
        }

        Self {
            num_nodes,
            num_edges: graph.num_edges(),
            num_node_types: schema.num_node_types(),
            num_relations,
            edges_per_relation,
            nodes_per_type,
            mean_degree: degree_sum as f64 / denom,
            max_degree,
            mean_degree_per_relation,
            max_degree_per_relation: rel_max,
            multiplex_pair_fraction: multiplex_pairs as f64 / connected_pairs.max(1) as f64,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "|V|={} |E|={} |O|={} |R|={}",
            self.num_nodes, self.num_edges, self.num_node_types, self.num_relations
        )?;
        writeln!(f, "nodes/type: {:?}", self.nodes_per_type)?;
        writeln!(f, "edges/relation: {:?}", self.edges_per_relation)?;
        writeln!(
            f,
            "degree/relation: mean {:?}, max {:?}",
            self.mean_degree_per_relation
                .iter()
                .map(|d| (d * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            self.max_degree_per_relation
        )?;
        write!(
            f,
            "mean degree {:.2}, max degree {}, multiplex pairs {:.1}%",
            self.mean_degree,
            self.max_degree,
            100.0 * self.multiplex_pair_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Schema};

    #[test]
    fn stats_on_tiny_graph() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r0 = schema.add_relation("a");
        let r1 = schema.add_relation("b");
        let mut b = GraphBuilder::new(schema);
        let n0 = b.add_node(t);
        let n1 = b.add_node(t);
        let n2 = b.add_node(t);
        b.add_edge(n0, n1, r0);
        b.add_edge(n0, n1, r1); // multiplex pair
        b.add_edge(n1, n2, r0);
        let g = b.build();

        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.edges_per_relation, vec![2, 1]);
        assert_eq!(s.nodes_per_type, vec![3]);
        assert_eq!(s.max_degree, 3); // n1: two r0 + one r1
        assert_eq!(s.max_degree_per_relation, vec![2, 1]);
        assert!((s.mean_degree_per_relation[0] - 4.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_degree_per_relation[1] - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.multiplex_pair_fraction - 0.5).abs() < 1e-9);
        assert!((s.mean_degree - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_key_counts() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r = schema.add_relation("a");
        let mut b = GraphBuilder::new(schema);
        let n0 = b.add_node(t);
        let n1 = b.add_node(t);
        b.add_edge(n0, n1, r);
        let s = GraphStats::compute(&b.build());
        let text = s.to_string();
        assert!(text.contains("|V|=2"));
        assert!(text.contains("|E|=1"));
        assert!(text.contains("degree/relation"));
    }
}
