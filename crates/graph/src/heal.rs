//! Self-healing for the sharded graph store: retry, quarantine, repair.
//!
//! Production storage lies — reads fail transiently, files get truncated,
//! bits rot. This module turns those events from terminal [`ShardError`]s
//! into a graded recovery ladder on every shard page-in:
//!
//! 1. **Retry with backoff.** A failed read/decode is retried up to
//!    [`HealPolicy::read_attempts`] times. The backoff waits on the
//!    `mhg-obs` [`mhg_obs::Clock`] of the attached [`Obs`] handle, so tests
//!    running on a fake clock get deterministic (and instant) backoff while
//!    production waits real nanoseconds.
//! 2. **Rebuild-from-source repair.** Every store is built from a
//!    re-streamable [`EdgeSource`]; when one is attached via
//!    [`ShardedCsr::with_heal_source`], a shard that exhausts its retries
//!    is regenerated in place — the relation's edges are re-streamed for
//!    exactly the shard's node range, cross-checked against the manifest
//!    degrees, atomically rewritten, and checksum re-verified — without
//!    touching healthy shards.
//! 3. **Quarantine.** A shard that cannot be repaired is quarantined:
//!    further accesses fail fast with [`ShardError::Quarantined`] instead
//!    of hammering a dead disk. [`ShardedCsr::repair`] lifts the quarantine
//!    once a rebuild succeeds.
//!
//! Every rung is observable: retries, repairs, repair failures and
//! quarantines increment `graph/shard_*` counters on the attached [`Obs`]
//! handle (merge-order independent, safe from any worker thread), and the
//! fsck-style [`ShardedCsr::verify_all`] / [`ShardedCsr::repair`] APIs —
//! also exposed as the `graph-fsck` CLI subcommand — emit events from the
//! coordinating thread.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, MutexGuard};

use mhg_obs::{EventValue, Obs};

use crate::shard_codec::{self, ShardError, ShardMeta};
use crate::sharded::{shard_file, EdgeSource, ShardedCsr};
use crate::{NodeId, RelationId};

/// Retry/backoff policy for shard page reads.
#[derive(Clone, Copy, Debug)]
pub struct HealPolicy {
    /// Total read attempts per page-in (at least 1; 1 disables retries).
    pub read_attempts: u32,
    /// Backoff before retry `k` is `backoff_base_ns << (k - 1)` (shift
    /// capped at 8). Zero disables the wait entirely.
    pub backoff_base_ns: u64,
    /// Write-attempt budget for the atomic rewrite during repair.
    pub repair_write_attempts: u32,
}

impl Default for HealPolicy {
    fn default() -> Self {
        Self {
            read_attempts: 3,
            backoff_base_ns: 100_000, // 100 µs, doubling per retry
            repair_write_attempts: 3,
        }
    }
}

/// Cumulative self-healing counters, mirrored as `graph/shard_*` obs
/// counters when a recording [`Obs`] handle is attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealStats {
    /// Read attempts that failed and were retried.
    pub retries: u64,
    /// Shards successfully rebuilt from the heal source.
    pub repairs: u64,
    /// Rebuild attempts that failed (no source, source mismatch, or IO).
    pub repair_failures: u64,
}

/// Internal per-store heal state.
pub(crate) struct HealState {
    pub(crate) policy: HealPolicy,
    pub(crate) obs: Obs,
    pub(crate) source: Option<Arc<dyn EdgeSource + Send + Sync>>,
    pub(crate) quarantined: Mutex<BTreeSet<(u16, u32)>>,
    pub(crate) stats: Mutex<HealStats>,
    /// Serializes rebuilds: two workers missing the same damaged shard
    /// would otherwise race on the shard file's single `*.tmp` sibling and
    /// the loser's rename would fail, quarantining a healthy shard.
    pub(crate) rebuild_serial: Mutex<()>,
}

impl HealState {
    pub(crate) fn new() -> Self {
        Self {
            policy: HealPolicy::default(),
            obs: Obs::disabled(),
            source: None,
            quarantined: Mutex::new(BTreeSet::new()),
            stats: Mutex::new(HealStats::default()),
            rebuild_serial: Mutex::new(()),
        }
    }
}

/// Recovers a heal-state mutex even if a panic poisoned it: the guarded
/// values are counters and a shard set, both safe to reuse.
fn lock_heal<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One corrupt shard found by [`ShardedCsr::verify_all`].
#[derive(Clone, Debug)]
pub struct FsckFinding {
    /// Relation index of the damaged shard file.
    pub relation: u16,
    /// Shard index within the relation.
    pub shard: u32,
    /// Human-readable error from the failed read/decode.
    pub error: String,
}

/// Result of an fsck pass over every shard file.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Number of shard files checked.
    pub checked: usize,
    /// The shards that failed to read or decode.
    pub corrupt: Vec<FsckFinding>,
}

impl FsckReport {
    /// Whether every shard verified.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Result of a [`ShardedCsr::repair`] pass.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Shards rebuilt from the source and checksum re-verified.
    pub repaired: Vec<(u16, u32)>,
    /// Shards that could not be rebuilt (still quarantined).
    pub failed: Vec<FsckFinding>,
}

impl RepairReport {
    /// Whether every corrupt shard was rebuilt.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

impl ShardedCsr {
    /// Attaches a re-streamable edge source enabling rebuild-from-source
    /// repair. The source must stream exactly the edges the store was built
    /// from; a mismatch is detected against the manifest degrees and the
    /// repair rejected.
    pub fn with_heal_source(mut self, source: Arc<dyn EdgeSource + Send + Sync>) -> Self {
        self.heal.source = Some(source);
        self
    }

    /// Overrides the retry/backoff policy.
    pub fn with_heal_policy(mut self, policy: HealPolicy) -> Self {
        self.heal.policy = HealPolicy {
            read_attempts: policy.read_attempts.max(1),
            ..policy
        };
        self
    }

    /// Attaches an [`Obs`] handle: its clock drives the retry backoff
    /// (deterministic under a fake clock) and its registry receives the
    /// `graph/shard_*` heal counters.
    pub fn with_heal_obs(mut self, obs: Obs) -> Self {
        self.heal.obs = obs;
        self
    }

    /// Cumulative retry/repair counters since open.
    pub fn heal_stats(&self) -> HealStats {
        *lock_heal(&self.heal.stats)
    }

    /// The `(relation, shard)` pairs currently quarantined.
    pub fn quarantined(&self) -> Vec<(u16, u32)> {
        lock_heal(&self.heal.quarantined).iter().copied().collect()
    }

    /// Fsck pass: reads and fully decodes every shard file (bypassing the
    /// page cache and the heal ladder) and reports the corrupt ones. Emits
    /// a `graph_fsck` event on the attached obs handle; call from the
    /// coordinating thread.
    pub fn verify_all(&self) -> FsckReport {
        let mut report = FsckReport::default();
        for (rel, table) in self.shards.iter().enumerate() {
            for (shard, meta) in table.iter().enumerate() {
                report.checked += 1;
                if let Err(e) = self.read_shard_once(rel as u16, shard as u32, meta, false) {
                    report.corrupt.push(FsckFinding {
                        relation: rel as u16,
                        shard: shard as u32,
                        error: e.to_string(),
                    });
                }
            }
        }
        self.heal.obs.event(
            "graph_fsck",
            &[
                ("checked", EventValue::U64(report.checked as u64)),
                ("corrupt", EventValue::U64(report.corrupt.len() as u64)),
            ],
        );
        report
    }

    /// Rebuilds every corrupt shard found by [`Self::verify_all`] from the
    /// attached heal source, lifting quarantines for shards that verify
    /// again. Emits a `graph_repair` event; call from the coordinating
    /// thread.
    pub fn repair(&self) -> RepairReport {
        let mut out = RepairReport::default();
        for finding in self.verify_all().corrupt {
            let meta = self.shards[finding.relation as usize][finding.shard as usize];
            match self.rebuild_shard(finding.relation, finding.shard, &meta) {
                Ok(_) => {
                    lock_heal(&self.heal.quarantined).remove(&(finding.relation, finding.shard));
                    out.repaired.push((finding.relation, finding.shard));
                }
                Err(e) => out.failed.push(FsckFinding {
                    error: e.to_string(),
                    ..finding
                }),
            }
        }
        // A shard quarantined by a transient fault burst may verify clean
        // now that the storm has passed; release it without a rebuild.
        for (relation, shard) in self.quarantined() {
            let meta = self.shards[relation as usize][shard as usize];
            if self.read_shard_once(relation, shard, &meta, false).is_ok() {
                lock_heal(&self.heal.quarantined).remove(&(relation, shard));
            }
        }
        self.heal.obs.event(
            "graph_repair",
            &[
                ("repaired", EventValue::U64(out.repaired.len() as u64)),
                ("failed", EventValue::U64(out.failed.len() as u64)),
            ],
        );
        out
    }

    /// The healing page-in ladder: bounded retries with clock backoff, then
    /// rebuild-from-source, then quarantine. Called from the pager's load
    /// closure on a cache miss.
    pub(crate) fn load_shard_healing(
        &self,
        relation: u16,
        shard: u32,
        meta: &ShardMeta,
    ) -> Result<Vec<NodeId>, ShardError> {
        if lock_heal(&self.heal.quarantined).contains(&(relation, shard)) {
            return Err(ShardError::Quarantined { relation, shard });
        }
        let attempts = self.heal.policy.read_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match self.read_shard_once(relation, shard, meta, true) {
                Ok(targets) => return Ok(targets),
                Err(_) if attempt.saturating_add(1) < attempts => {
                    attempt += 1;
                    lock_heal(&self.heal.stats).retries += 1;
                    self.heal.obs.counter_add("graph/shard_retries", 1);
                    self.backoff(attempt);
                }
                Err(_) => break,
            }
        }
        // Retries exhausted: regenerate the shard in place from the source.
        match self.rebuild_shard(relation, shard, meta) {
            Ok(targets) => Ok(targets),
            Err(_) => {
                lock_heal(&self.heal.quarantined).insert((relation, shard));
                self.heal.obs.counter_add("graph/shard_quarantined", 1);
                Err(ShardError::Quarantined { relation, shard })
            }
        }
    }

    /// One raw read + decode of a shard file. `inject` arms the per-shard
    /// `ShardRead`/`ShardDecode` fault sites (the page-load path); the
    /// repair re-verify and fsck paths read without them so a scheduled
    /// page fault cannot masquerade as a failed repair.
    fn read_shard_once(
        &self,
        relation: u16,
        shard: u32,
        meta: &ShardMeta,
        inject: bool,
    ) -> Result<Vec<NodeId>, ShardError> {
        if inject {
            mhg_faults::io_error_if_scheduled(mhg_faults::FaultSite::ShardRead, "shard read")?;
        }
        let bytes = mhg_ckpt::read_file(shard_file(&self.dir, relation, shard))?;
        if inject && mhg_faults::should_inject(mhg_faults::FaultSite::ShardDecode) {
            return Err(ShardError::ChecksumMismatch);
        }
        shard_codec::decode_shard(&bytes, relation, shard, meta, self.node_types.len())
    }

    /// Regenerates one shard from the heal source: re-streams the
    /// relation's edges for exactly the shard's node range, cross-checks
    /// the per-node degrees against the manifest offsets, atomically
    /// rewrites the file and re-verifies its checksum from disk. Rebuilds
    /// are serialized store-wide and preceded by a re-check read, so a
    /// shard another worker already repaired — or one healthy again after
    /// a transient fault — is returned as-is instead of rewritten.
    fn rebuild_shard(
        &self,
        relation: u16,
        shard: u32,
        meta: &ShardMeta,
    ) -> Result<Vec<NodeId>, ShardError> {
        let fail = |state: &HealState, e: ShardError| -> ShardError {
            lock_heal(&state.stats).repair_failures += 1;
            state.obs.counter_add("graph/shard_repair_failures", 1);
            e
        };
        // One rebuild at a time: concurrent page-ins of the same damaged
        // shard must not race on the shard file. Whoever waited here may
        // find the shard already rebuilt — a plain read settles it without
        // touching the disk again (and without counting a second repair).
        let _serial = lock_heal(&self.heal.rebuild_serial);
        if let Ok(targets) = self.read_shard_once(relation, shard, meta, false) {
            return Ok(targets);
        }
        let Some(source) = self.heal.source.as_ref() else {
            return Err(fail(
                &self.heal,
                ShardError::Inconsistent("no heal source attached"),
            ));
        };
        let rel = RelationId(relation);
        let (lo, hi) = (meta.start as usize, meta.end as usize);
        // Collect the directed edges landing in the shard's node range;
        // sorting by (source, target) and deduplicating reproduces the
        // `Csr::from_directed_edges` per-node sort + dedup semantics.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        source.for_each_edge(&mut |r, u, v| {
            if r != rel {
                return;
            }
            for (src, dst) in [(u, v), (v, u)] {
                let i = src.index();
                if i >= lo && i < hi {
                    pairs.push((src.0, dst.0));
                }
            }
        });
        pairs.sort_unstable();
        pairs.dedup();

        // Degree cross-check against the manifest the store already
        // trusts: a drifted source must be rejected, not written.
        let off = &self.offsets[rel.index()];
        let mut targets = Vec::with_capacity(meta.num_targets as usize);
        let mut idx = 0usize;
        for node in lo..hi {
            let want = off[node + 1].saturating_sub(off[node]) as usize;
            let mut got = 0usize;
            while idx < pairs.len() && pairs[idx].0 as usize == node {
                targets.push(NodeId(pairs[idx].1));
                idx += 1;
                got += 1;
            }
            if got != want {
                return Err(fail(
                    &self.heal,
                    ShardError::Inconsistent("heal source contradicts manifest degrees"),
                ));
            }
        }
        if idx != pairs.len() || targets.len() != meta.num_targets as usize {
            return Err(fail(
                &self.heal,
                ShardError::Inconsistent("heal source contradicts shard target count"),
            ));
        }

        let bytes = shard_codec::encode_shard(relation, shard, meta, &targets);
        let path = shard_file(&self.dir, relation, shard);
        if let Err(e) = mhg_ckpt::atomic_write_retry(
            &path,
            &bytes,
            self.heal.policy.repair_write_attempts.max(1),
        ) {
            return Err(fail(&self.heal, ShardError::Io(e)));
        }
        // Re-verify from disk (retried, since the read itself can fault)
        // before declaring the repair good.
        let attempts = self.heal.policy.read_attempts.max(1);
        let mut attempt = 0u32;
        let verified = loop {
            match self.read_shard_once(relation, shard, meta, false) {
                Ok(t) => break t,
                Err(_) if attempt.saturating_add(1) < attempts => {
                    attempt += 1;
                    self.backoff(attempt);
                }
                Err(e) => return Err(fail(&self.heal, e)),
            }
        };
        if verified != targets {
            return Err(fail(&self.heal, ShardError::ChecksumMismatch));
        }
        lock_heal(&self.heal.stats).repairs += 1;
        self.heal.obs.counter_add("graph/shard_repairs", 1);
        Ok(verified)
    }

    /// Waits `backoff_base_ns << (attempt - 1)` nanoseconds on the obs
    /// clock. Under a [`mhg_obs::FakeClock`] every reading advances the
    /// calling thread's time, so the wait is a short deterministic loop;
    /// under the real clock it is a bounded busy-yield.
    fn backoff(&self, attempt: u32) {
        let base = self.heal.policy.backoff_base_ns;
        if base == 0 {
            return;
        }
        let delay = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(8));
        let deadline = self.heal.obs.now_ns().saturating_add(delay);
        while self.heal.obs.now_ns() < deadline {
            std::thread::yield_now();
        }
    }
}
