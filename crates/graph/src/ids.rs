//! Strongly-typed identifiers.
//!
//! Node ids are `u32` (the paper's largest graph has ~105k nodes), node-type
//! and relation ids are `u16` — keeping hot adjacency arrays compact per the
//! "smaller integers" guidance in the perf book.

use std::fmt;

/// Identifier of a node in a [`MultiplexGraph`](crate::MultiplexGraph).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a node type (the paper's `O` set, e.g. user / video / author).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeTypeId(pub u16);

impl NodeTypeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of an edge type / relationship (the paper's `R` set,
/// e.g. click / like / comment / download).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u16);

impl RelationId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_format() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(format!("{:?}", NodeTypeId(1)), "t1");
        assert_eq!(format!("{:?}", RelationId(3)), "r3");
    }

    #[test]
    fn ordering() {
        assert!(NodeId(1) < NodeId(2));
        assert!(RelationId(0) < RelationId(5));
    }
}
