//! Multiplex heterogeneous graph substrate for the HybridGNN reproduction.
//!
//! Implements the paper's Definitions 1–5: heterogeneous networks with typed
//! nodes (`O`) and multiple relations (`R`) where a pair of nodes may be
//! connected under several relations simultaneously (the *multiplexity*
//! property), plus metapath schemes and relation-specific subgraphs.
//!
//! Storage comes in two interchangeable backends behind the [`GraphStore`]
//! trait: the in-RAM [`MultiplexGraph`] (one undirected CSR per relation,
//! O(1) neighbor slices, O(log d) membership tests) and the chunk-paged
//! [`ShardedCsr`] (per-relation CSR shards on disk, paged through a
//! byte-budgeted cache, for graphs larger than RAM). Every sampler in
//! `mhg-sampling` is written against the trait and produces bit-identical
//! walk streams over either backend. The sharded backend self-heals:
//! failed page reads are retried with clock-driven backoff, corrupt shards
//! are rebuilt in place from the original [`EdgeSource`], and
//! unrecoverable shards are quarantined (see [`heal`]).
//!
//! # Example
//!
//! ```
//! use mhg_graph::{GraphBuilder, MetapathScheme, Schema};
//!
//! let mut schema = Schema::new();
//! let user = schema.add_node_type("user");
//! let video = schema.add_node_type("video");
//! let like = schema.add_relation("like");
//! let comment = schema.add_relation("comment");
//!
//! let mut b = GraphBuilder::new(schema);
//! let u = b.add_node(user);
//! let v = b.add_node(video);
//! b.add_edge(u, v, like);
//! b.add_edge(u, v, comment); // multiplex: same pair, second relation
//! let g = b.build();
//!
//! assert!(g.has_edge(u, v, like) && g.has_edge(u, v, comment));
//! let uvu = MetapathScheme::intra(vec![user, video, user], like);
//! assert!(uvu.is_intra_relationship());
//! ```

mod csr;
mod graph;
pub mod heal;
mod ids;
mod metapath;
pub mod persist;
mod schema;
pub mod shard_codec;
mod sharded;
mod stats;
mod store;

pub use csr::Csr;
pub use graph::{GraphBuilder, MultiplexGraph};
pub use heal::{FsckFinding, FsckReport, HealPolicy, HealStats, RepairReport};
pub use ids::{NodeId, NodeTypeId, RelationId};
pub use metapath::MetapathScheme;
pub use schema::Schema;
pub use shard_codec::ShardError;
pub use sharded::{
    EdgeSource, PageStats, ShardedCsr, ShardedCsrOptions, MANIFEST_FILE, STORE_FAILURE_PREFIX,
};
pub use stats::GraphStats;
pub use store::GraphStore;
