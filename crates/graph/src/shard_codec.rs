//! On-disk wire format for the sharded CSR store.
//!
//! Two file kinds, both following the hardened `mhg-ckpt` codec discipline:
//! a magic header, a version field, length-guarded reads, checked size
//! narrowing on encode ([`size_u32`]/[`size_u16`]), and an FNV-1a 64
//! checksum trailer over everything that precedes it. Writes go through
//! `mhg_ckpt::atomic_write`; reads through `mhg_ckpt::read_file` (which
//! carries the `mhg-faults` io_read injection site).
//!
//! ## Manifest (`manifest.mhgs`, magic `MHGS`)
//!
//! ```text
//! "MHGS" | u16 version
//! u16 #node-type names | (u16 len | bytes)*
//! u16 #relation names  | (u16 len | bytes)*
//! u32 num_nodes | u16 node_type * num_nodes
//! per relation:
//!     u32 shard_count | (u32 start | u32 end | u32 num_targets)*
//!     u32 (num_nodes+1) global CSR offsets
//! u64 fnv1a64 of all preceding bytes
//! ```
//!
//! ## Shard (`r{R}-s{S}.shard`, magic `MHSH`)
//!
//! ```text
//! "MHSH" | u16 version | u16 relation | u32 shard index
//! u32 start | u32 end | u32 num_targets | u32 target * num_targets
//! u64 fnv1a64 of all preceding bytes
//! ```
//!
//! Decoding validates every length prefix against the bytes actually
//! remaining *before* allocating, verifies the checksum trailer, and
//! cross-checks shard payloads against the manifest metadata the caller
//! already holds — corrupt, truncated or hostile input always yields a
//! typed [`ShardError`], never a panic or a runaway allocation.

use bytes::{Buf, BufMut, BytesMut};

use crate::{NodeId, NodeTypeId, Schema};

/// Magic bytes of the manifest file.
pub const MANIFEST_MAGIC: &[u8; 4] = b"MHGS";
/// Magic bytes of a shard file.
pub const SHARD_MAGIC: &[u8; 4] = b"MHSH";
/// Current format version (shared by manifest and shards).
pub const VERSION: u16 = 1;

/// Errors produced by the sharded-store codec and loader.
#[derive(Debug)]
pub enum ShardError {
    /// An underlying filesystem read or write failed.
    Io(std::io::Error),
    /// The buffer did not start with the expected magic bytes.
    BadMagic,
    /// Format version not supported by this build.
    UnsupportedVersion(u16),
    /// The buffer ended prematurely or a length prefix exceeded it.
    Truncated,
    /// The checksum trailer did not match the payload.
    ChecksumMismatch,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Structurally valid bytes that contradict themselves or the manifest.
    Inconsistent(&'static str),
    /// The shard exhausted its read retries and could not be rebuilt from
    /// the heal source; it is quarantined until [`crate::ShardedCsr::repair`]
    /// succeeds.
    Quarantined {
        /// Relation index of the quarantined shard.
        relation: u16,
        /// Shard index within the relation.
        shard: u32,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard store I/O error: {e}"),
            ShardError::BadMagic => write!(f, "not a sharded-graph file (bad magic)"),
            ShardError::UnsupportedVersion(v) => write!(f, "unsupported shard format version {v}"),
            ShardError::Truncated => write!(f, "shard data truncated or inconsistent length"),
            ShardError::ChecksumMismatch => write!(f, "shard checksum mismatch"),
            ShardError::BadUtf8 => write!(f, "invalid UTF-8 in shard manifest string"),
            ShardError::Inconsistent(what) => write!(f, "inconsistent shard data: {what}"),
            ShardError::Quarantined { relation, shard } => write!(
                f,
                "shard r{relation}-s{shard} quarantined: retries exhausted and repair failed"
            ),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Checked narrowing of a count to a `u32` wire field: a graph too large
/// for the format must fail loudly instead of wrapping into a corrupt
/// shard.
pub(crate) fn size_u32(n: usize, what: &str) -> u32 {
    assert!(
        u32::try_from(n).is_ok(),
        "encode: {what} {n} exceeds the u32 shard format"
    );
    n as u32
}

/// Checked narrowing of a count to a `u16` wire field.
pub(crate) fn size_u16(n: usize, what: &str) -> u16 {
    assert!(
        u16::try_from(n).is_ok(),
        "encode: {what} {n} exceeds the u16 shard format"
    );
    n as u16
}

/// Metadata of one shard: the contiguous node range `[start, end)` whose
/// neighbor lists it holds, and the (deduplicated) target count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// First node id covered by the shard.
    pub start: u32,
    /// One past the last node id covered.
    pub end: u32,
    /// Number of targets stored (sum of covered degrees).
    pub num_targets: u32,
}

/// Decoded manifest: everything the store keeps resident in RAM.
#[derive(Debug)]
pub struct Manifest {
    /// The graph schema (node-type and relation vocabularies).
    pub schema: Schema,
    /// Per-node type tags.
    pub node_types: Vec<NodeTypeId>,
    /// Per-relation shard tables.
    pub shards: Vec<Vec<ShardMeta>>,
    /// Per-relation global CSR offsets (`num_nodes + 1` entries each).
    pub offsets: Vec<Vec<u32>>,
}

/// Serialises a manifest.
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + m.node_types.len().saturating_mul(6));
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u16_le(VERSION);
    put_str_list(&mut buf, m.schema.node_type_names());
    put_str_list(&mut buf, m.schema.relation_names());
    buf.put_u32_le(size_u32(m.node_types.len(), "node count"));
    for &t in &m.node_types {
        buf.put_u16_le(t.0);
    }
    for (shards, offsets) in m.shards.iter().zip(&m.offsets) {
        buf.put_u32_le(size_u32(shards.len(), "shard count"));
        for s in shards {
            buf.put_u32_le(s.start);
            buf.put_u32_le(s.end);
            buf.put_u32_le(s.num_targets);
        }
        for &o in offsets {
            buf.put_u32_le(o);
        }
    }
    let sum = mhg_ckpt::fnv1a64(&buf);
    buf.put_u64_le(sum);
    buf.to_vec()
}

/// Deserialises and validates a manifest.
pub fn decode_manifest(data: &[u8]) -> Result<Manifest, ShardError> {
    let mut buf = check_trailer(data)?;
    if buf.remaining() < 6 {
        return Err(ShardError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MANIFEST_MAGIC {
        return Err(ShardError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(ShardError::UnsupportedVersion(version));
    }

    let node_type_names = get_str_list(&mut buf)?;
    let relation_names = get_str_list(&mut buf)?;
    let mut schema = Schema::new();
    for n in &node_type_names {
        schema.add_node_type(n);
    }
    for r in &relation_names {
        schema.add_relation(r);
    }
    if schema.num_node_types() != node_type_names.len()
        || schema.num_relations() != relation_names.len()
    {
        // Duplicate names collapsed by interning — the manifest is corrupt.
        return Err(ShardError::Inconsistent("duplicate schema names"));
    }

    let num_nodes = get_u32(&mut buf)? as usize;
    if num_nodes
        .checked_mul(2)
        .is_none_or(|need| need > buf.remaining())
    {
        return Err(ShardError::Truncated);
    }
    let mut node_types = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let t = buf.get_u16_le();
        if t as usize >= schema.num_node_types() {
            return Err(ShardError::Inconsistent("node type out of range"));
        }
        node_types.push(NodeTypeId(t));
    }

    let mut shards = Vec::with_capacity(schema.num_relations());
    let mut offsets = Vec::with_capacity(schema.num_relations());
    for _ in 0..schema.num_relations() {
        let n_shards = get_u32(&mut buf)? as usize;
        if n_shards
            .checked_mul(12)
            .is_none_or(|need| need > buf.remaining())
        {
            return Err(ShardError::Truncated);
        }
        let mut table = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            table.push(ShardMeta {
                start: get_u32(&mut buf)?,
                end: get_u32(&mut buf)?,
                num_targets: get_u32(&mut buf)?,
            });
        }
        let n_off = num_nodes + 1;
        if n_off
            .checked_mul(4)
            .is_none_or(|need| need > buf.remaining())
        {
            return Err(ShardError::Truncated);
        }
        let mut off = Vec::with_capacity(n_off);
        for _ in 0..n_off {
            off.push(buf.get_u32_le());
        }
        validate_relation(num_nodes, &table, &off)?;
        shards.push(table);
        offsets.push(off);
    }
    if buf.remaining() > 0 {
        return Err(ShardError::Inconsistent("trailing bytes after manifest"));
    }

    Ok(Manifest {
        schema,
        node_types,
        shards,
        offsets,
    })
}

/// Structural checks tying a relation's shard table to its offsets: shards
/// are contiguous, cover `[0, num_nodes)`, and each shard's target count
/// equals the offset span of its node range.
fn validate_relation(num_nodes: usize, table: &[ShardMeta], off: &[u32]) -> Result<(), ShardError> {
    if !off.windows(2).all(|w| w[0] <= w[1]) {
        return Err(ShardError::Inconsistent("offsets not monotone"));
    }
    if off[0] != 0 {
        return Err(ShardError::Inconsistent("offsets must start at zero"));
    }
    let mut cursor = 0u32;
    for s in table {
        if s.start != cursor || s.end <= s.start || s.end as usize > num_nodes {
            return Err(ShardError::Inconsistent("shard ranges not contiguous"));
        }
        let span = off[s.end as usize] - off[s.start as usize];
        if span != s.num_targets {
            return Err(ShardError::Inconsistent("shard target count mismatch"));
        }
        cursor = s.end;
    }
    let covered = cursor as usize == num_nodes;
    let empty_ok = table.is_empty() && off[num_nodes] == 0;
    if !covered && !empty_ok {
        return Err(ShardError::Inconsistent("shards do not cover node range"));
    }
    Ok(())
}

/// Serialises one shard's targets.
pub fn encode_shard(relation: u16, shard: u32, meta: &ShardMeta, targets: &[NodeId]) -> Vec<u8> {
    assert!(
        targets.len() == meta.num_targets as usize,
        "encode: shard target slice must match its metadata"
    );
    let mut buf = BytesMut::with_capacity(32 + targets.len().saturating_mul(4));
    buf.put_slice(SHARD_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(relation);
    buf.put_u32_le(shard);
    buf.put_u32_le(meta.start);
    buf.put_u32_le(meta.end);
    buf.put_u32_le(size_u32(targets.len(), "shard target count"));
    for &t in targets {
        buf.put_u32_le(t.0);
    }
    let sum = mhg_ckpt::fnv1a64(&buf);
    buf.put_u64_le(sum);
    buf.to_vec()
}

/// Deserialises one shard, cross-checking every header field against the
/// manifest metadata the caller already trusts.
pub fn decode_shard(
    data: &[u8],
    relation: u16,
    shard: u32,
    meta: &ShardMeta,
    num_nodes: usize,
) -> Result<Vec<NodeId>, ShardError> {
    let mut buf = check_trailer(data)?;
    if buf.remaining() < 20 {
        return Err(ShardError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != SHARD_MAGIC {
        return Err(ShardError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(ShardError::UnsupportedVersion(version));
    }
    if buf.get_u16_le() != relation || buf.get_u32_le() != shard {
        return Err(ShardError::Inconsistent("shard identity mismatch"));
    }
    if buf.get_u32_le() != meta.start || buf.get_u32_le() != meta.end {
        return Err(ShardError::Inconsistent("shard node range mismatch"));
    }
    let count = get_u32(&mut buf)? as usize;
    if count != meta.num_targets as usize {
        return Err(ShardError::Inconsistent("shard target count mismatch"));
    }
    // A hostile count is caught twice: against the manifest above, and
    // against the bytes actually present before the allocation below.
    if count
        .checked_mul(4)
        .is_none_or(|need| need != buf.remaining())
    {
        return Err(ShardError::Truncated);
    }
    let mut targets = Vec::with_capacity(count);
    for _ in 0..count {
        let t = buf.get_u32_le();
        if t as usize >= num_nodes {
            return Err(ShardError::Inconsistent("target node out of range"));
        }
        targets.push(NodeId(t));
    }
    Ok(targets)
}

/// Verifies the 8-byte FNV-1a trailer and returns the payload before it.
fn check_trailer(data: &[u8]) -> Result<&[u8], ShardError> {
    if data.len() < 8 {
        return Err(ShardError::Truncated);
    }
    let (payload, tail) = data.split_at(data.len() - 8);
    let mut tail = tail;
    let stored = tail.get_u64_le();
    if mhg_ckpt::fnv1a64(payload) != stored {
        return Err(ShardError::ChecksumMismatch);
    }
    Ok(payload)
}

fn put_str_list(buf: &mut BytesMut, items: &[String]) {
    buf.put_u16_le(size_u16(items.len(), "string-list length"));
    for s in items {
        buf.put_u16_le(size_u16(s.len(), "string length"));
        buf.put_slice(s.as_bytes());
    }
}

fn get_str_list(buf: &mut &[u8]) -> Result<Vec<String>, ShardError> {
    if buf.remaining() < 2 {
        return Err(ShardError::Truncated);
    }
    let n = buf.get_u16_le() as usize;
    // Every entry needs at least its 2-byte length prefix.
    if n.checked_mul(2).is_none_or(|need| need > buf.remaining()) {
        return Err(ShardError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 2 {
            return Err(ShardError::Truncated);
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len {
            return Err(ShardError::Truncated);
        }
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        out.push(String::from_utf8(bytes).map_err(|_| ShardError::BadUtf8)?);
    }
    Ok(out)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, ShardError> {
    if buf.remaining() < 4 {
        return Err(ShardError::Truncated);
    }
    Ok(buf.get_u32_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        let mut schema = Schema::new();
        schema.add_node_type("user");
        schema.add_node_type("item");
        schema.add_relation("view");
        Manifest {
            schema,
            node_types: vec![NodeTypeId(0), NodeTypeId(0), NodeTypeId(1)],
            shards: vec![vec![
                ShardMeta {
                    start: 0,
                    end: 2,
                    num_targets: 2,
                },
                ShardMeta {
                    start: 2,
                    end: 3,
                    num_targets: 2,
                },
            ]],
            offsets: vec![vec![0, 1, 2, 4]],
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = sample_manifest();
        let bytes = encode_manifest(&m);
        let m2 = decode_manifest(&bytes).expect("decode");
        assert_eq!(m2.schema, m.schema);
        assert_eq!(m2.node_types, m.node_types);
        assert_eq!(m2.shards, m.shards);
        assert_eq!(m2.offsets, m.offsets);
    }

    #[test]
    fn shard_roundtrip() {
        let meta = ShardMeta {
            start: 0,
            end: 2,
            num_targets: 2,
        };
        let targets = vec![NodeId(2), NodeId(2)];
        let bytes = encode_shard(0, 0, &meta, &targets);
        let back = decode_shard(&bytes, 0, 0, &meta, 3).expect("decode");
        assert_eq!(back, targets);
    }

    #[test]
    fn shard_identity_cross_checked() {
        let meta = ShardMeta {
            start: 0,
            end: 2,
            num_targets: 2,
        };
        let bytes = encode_shard(0, 0, &meta, &[NodeId(2), NodeId(2)]);
        assert!(matches!(
            decode_shard(&bytes, 1, 0, &meta, 3),
            Err(ShardError::ChecksumMismatch) | Err(ShardError::Inconsistent(_))
        ));
        assert!(matches!(
            decode_shard(&bytes, 0, 7, &meta, 3),
            Err(ShardError::Inconsistent(_))
        ));
    }

    #[test]
    fn manifest_rejects_incoherent_tables() {
        let mut m = sample_manifest();
        m.shards[0][1].num_targets = 9; // contradicts the offsets
        let bytes = encode_manifest(&m);
        assert!(matches!(
            decode_manifest(&bytes),
            Err(ShardError::Inconsistent(_))
        ));
    }
}
