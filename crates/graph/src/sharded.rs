//! [`ShardedCsr`]: a chunk-paged, on-disk CSR store for graphs larger than
//! RAM.
//!
//! The store keeps only compact metadata resident — schema, per-node type
//! tags, per-relation global CSR offsets and the shard tables — while the
//! target arrays live in per-`(relation, shard)` files and are paged in on
//! demand through a byte-budgeted FIFO cache. Each shard covers a
//! *contiguous node range*, so every neighbor list lives entirely inside
//! one shard and `with_neighbors` never stitches pages.
//!
//! Building never materialises the whole graph: [`ShardedCsr::build`]
//! consumes a re-streamable [`EdgeSource`] in waves. Pass A streams the
//! edges once to count per-node degree upper bounds and plan shard
//! boundaries; each wave then re-streams the edges, collects only the
//! directed edges landing in the wave's node ranges, sorts + dedups each
//! neighbor list with exactly the semantics of `Csr::from_directed_edges`,
//! and atomically writes the finished shard files. Peak memory is bounded
//! by the wave budget plus the resident metadata — independent of the
//! graph's total edge count.
//!
//! Determinism: neighbor lists are bit-identical to the in-RAM
//! [`MultiplexGraph`] built from the same edges, so samplers driven by
//! `derive_seed`-derived streams produce byte-identical walks over either
//! backend (pinned by `crates/sampling/tests/store_parity.rs`).

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::heal::HealState;
use crate::shard_codec::{self, Manifest, ShardError, ShardMeta};
use crate::store::GraphStore;
use crate::{MultiplexGraph, NodeId, NodeTypeId, RelationId, Schema};

/// Tuning knobs for building and paging a [`ShardedCsr`].
#[derive(Clone, Copy, Debug)]
pub struct ShardedCsrOptions {
    /// Upper bound on directed targets per shard (pre-dedup). Smaller
    /// shards mean cheaper page misses but more files.
    pub shard_target_cap: usize,
    /// Byte budget of the page cache. At least one page is always kept, so
    /// a single oversized shard still loads.
    pub page_budget_bytes: usize,
    /// Byte budget of the build-time wave buffers (directed-edge staging).
    pub build_budget_bytes: usize,
}

impl Default for ShardedCsrOptions {
    fn default() -> Self {
        Self {
            // 64K targets ≈ 256 KiB per shard file.
            shard_target_cap: 1 << 16,
            page_budget_bytes: 32 << 20,
            build_budget_bytes: 64 << 20,
        }
    }
}

/// A streamable, repeatable source of undirected multiplex edges.
///
/// `for_each_edge` must be deterministic: the builder streams the source
/// several times (once to count, once per wave) and every pass must observe
/// the same edges. Duplicate edges are fine — they are deduplicated per
/// neighbor list exactly as `GraphBuilder::build` does.
pub trait EdgeSource: Sync {
    /// The schema of the streamed graph.
    fn schema(&self) -> &Schema;
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// The type of node `v`.
    fn node_type_of(&self, v: NodeId) -> NodeTypeId;
    /// Streams every undirected edge `(r, u, v)` exactly once per call, in
    /// a deterministic order.
    fn for_each_edge(&self, f: &mut dyn FnMut(RelationId, NodeId, NodeId));
}

impl EdgeSource for MultiplexGraph {
    fn schema(&self) -> &Schema {
        MultiplexGraph::schema(self)
    }

    fn num_nodes(&self) -> usize {
        MultiplexGraph::num_nodes(self)
    }

    fn node_type_of(&self, v: NodeId) -> NodeTypeId {
        self.node_type(v)
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(RelationId, NodeId, NodeId)) {
        for r in self.schema().relations() {
            for (u, v) in self.edges_in(r) {
                f(r, u, v);
            }
        }
    }
}

/// Page-cache counters, exposed for the memory-bound tests and the graph
/// benchmark. All byte figures count target payloads (4 bytes per entry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Pages read and decoded from disk.
    pub loads: u64,
    /// Accesses served from the cache.
    pub hits: u64,
    /// Pages evicted to stay inside the budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// High-water mark of resident bytes.
    pub peak_bytes: usize,
}

struct PagerState {
    pages: BTreeMap<(u16, u32), Arc<Vec<NodeId>>>,
    fifo: VecDeque<(u16, u32)>,
    stats: PageStats,
}

/// Byte-budgeted FIFO page cache over shard files.
struct Pager {
    budget: usize,
    state: Mutex<PagerState>,
}

impl Pager {
    fn new(budget: usize) -> Self {
        Self {
            budget: budget.max(1),
            state: Mutex::new(PagerState {
                pages: BTreeMap::new(),
                fifo: VecDeque::new(),
                stats: PageStats::default(),
            }),
        }
    }

    /// Fetches a page, loading it via `load` on a miss and evicting
    /// oldest-first past the byte budget.
    fn get(
        &self,
        key: (u16, u32),
        load: impl FnOnce() -> Result<Vec<NodeId>, ShardError>,
    ) -> Result<Arc<Vec<NodeId>>, ShardError> {
        let mut st = lock_pager(&self.state);
        if let Some(page) = st.pages.get(&key).map(Arc::clone) {
            st.stats.hits += 1;
            return Ok(page);
        }
        drop(st);
        // Load outside the lock: a slow disk read must not serialize hits
        // on other pages. A racing thread may load the same page; the
        // second insert below simply wins and the loser's copy is dropped.
        let page = Arc::new(load()?);
        let bytes = page.len().saturating_mul(4);
        let mut st = lock_pager(&self.state);
        st.stats.loads += 1;
        // Make room first, so resident_bytes (and its high-water mark) never
        // exceeds the budget unless a single page is itself oversized.
        while st.stats.resident_bytes.saturating_add(bytes) > self.budget && !st.fifo.is_empty() {
            let Some(old) = st.fifo.pop_front() else {
                break;
            };
            if let Some(evicted) = st.pages.remove(&old) {
                let freed = evicted.len().saturating_mul(4);
                st.stats.resident_bytes = st.stats.resident_bytes.saturating_sub(freed);
                st.stats.evictions += 1;
            }
        }
        if st.pages.insert(key, Arc::clone(&page)).is_none() {
            st.fifo.push_back(key);
            st.stats.resident_bytes = st.stats.resident_bytes.saturating_add(bytes);
        }
        st.stats.peak_bytes = st.stats.peak_bytes.max(st.stats.resident_bytes);
        Ok(page)
    }

    fn stats(&self) -> PageStats {
        lock_pager(&self.state).stats
    }
}

/// Recovers the pager mutex even if a panic poisoned it: the guarded state
/// is a cache plus counters, both safe to reuse after an unwound access.
fn lock_pager(m: &Mutex<PagerState>) -> std::sync::MutexGuard<'_, PagerState> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A sharded, chunk-paged CSR multiplex graph store.
///
/// Resident memory: schema + 2 bytes/node (types) + 4 bytes/node/relation
/// (offsets) + shard tables. Target arrays are paged through a byte-budgeted
/// cache, so graphs larger than RAM stream through walk generation.
pub struct ShardedCsr {
    pub(crate) dir: PathBuf,
    schema: Schema,
    pub(crate) node_types: Vec<NodeTypeId>,
    nodes_by_type: Vec<Vec<NodeId>>,
    pub(crate) shards: Vec<Vec<ShardMeta>>,
    pub(crate) offsets: Vec<Vec<u32>>,
    pager: Pager,
    pub(crate) heal: HealState,
}

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.mhgs";

pub(crate) fn shard_file(dir: &Path, relation: u16, shard: u32) -> PathBuf {
    dir.join(format!("r{relation}-s{shard}.shard"))
}

impl ShardedCsr {
    /// Builds a sharded store under `dir` by streaming `source`, then opens
    /// it. Existing shard files in `dir` are overwritten atomically.
    pub fn build(
        source: &impl EdgeSource,
        dir: impl AsRef<Path>,
        opts: ShardedCsrOptions,
    ) -> Result<Self, ShardError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let num_nodes = source.num_nodes();
        let schema = source.schema().clone();
        let num_relations = schema.num_relations();

        // Pass A: stream once, counting a per-node directed-degree upper
        // bound per relation (duplicates still counted — dedup happens at
        // shard build, so these are upper bounds for buffer sizing).
        let mut ub: Vec<Vec<u32>> = (0..num_relations).map(|_| vec![0u32; num_nodes]).collect();
        source.for_each_edge(&mut |r, u, v| {
            let c = &mut ub[r.index()];
            c[u.index()] = c[u.index()].saturating_add(1);
            c[v.index()] = c[v.index()].saturating_add(1);
        });

        // Plan contiguous shard ranges per relation under the target cap.
        let cap = opts.shard_target_cap.max(1) as u64;
        let mut plan: Vec<Vec<ShardMeta>> = Vec::with_capacity(num_relations);
        for counts in &ub {
            let mut table = Vec::new();
            let mut start = 0usize;
            let mut acc = 0u64;
            let mut any = false;
            for (v, &c) in counts.iter().enumerate() {
                if acc + u64::from(c) > cap && v > start {
                    table.push(ShardMeta {
                        start: shard_codec::size_u32(start, "shard start"),
                        end: shard_codec::size_u32(v, "shard end"),
                        num_targets: 0, // final count filled per wave
                    });
                    start = v;
                    acc = 0;
                }
                acc += u64::from(c);
                any = any || c > 0;
            }
            if num_nodes > start && any {
                table.push(ShardMeta {
                    start: shard_codec::size_u32(start, "shard start"),
                    end: shard_codec::size_u32(num_nodes, "shard end"),
                    num_targets: 0,
                });
            }
            plan.push(table);
        }

        // Wave passes: materialise a bounded run of consecutive shards of
        // one relation, re-streaming the source once per wave.
        let mut offsets: Vec<Vec<u32>> = (0..num_relations)
            .map(|_| Vec::with_capacity(num_nodes + 1))
            .collect();
        for off in &mut offsets {
            off.push(0);
        }
        let budget_targets = (opts.build_budget_bytes / 4).max(opts.shard_target_cap.max(1));
        for rel in 0..num_relations {
            let table = &mut plan[rel];
            let counts = &ub[rel];
            let mut next_shard = 0usize;
            while next_shard < table.len() {
                // Extend the wave while the summed upper bounds fit.
                let wave_start = next_shard;
                let node_start = table[wave_start].start as usize;
                let mut wave_targets = 0u64;
                while next_shard < table.len() {
                    let s = &table[next_shard];
                    let ub_sum: u64 = counts[s.start as usize..s.end as usize]
                        .iter()
                        .map(|&c| u64::from(c))
                        .sum();
                    if next_shard > wave_start && wave_targets + ub_sum > budget_targets as u64 {
                        break;
                    }
                    wave_targets += ub_sum;
                    next_shard += 1;
                }
                let node_end = table[next_shard - 1].end as usize;

                // Counting-sort staging: local offsets from the upper-bound
                // degrees, then a second stream drops each target in place.
                let span = node_end - node_start;
                let mut local_off = Vec::with_capacity(span + 1);
                local_off.push(0u64);
                for &c in &counts[node_start..node_end] {
                    let last = *local_off.last().unwrap_or(&0);
                    local_off.push(last + u64::from(c));
                }
                let total = usize::try_from(*local_off.last().unwrap_or(&0))
                    .map_err(|_| ShardError::Inconsistent("wave too large"))?;
                let mut staging = vec![NodeId(0); total];
                let mut cursor: Vec<u64> = local_off[..span].to_vec();
                let rel_id = RelationId(shard_codec::size_u16(rel, "relation id"));
                source.for_each_edge(&mut |r, u, v| {
                    if r != rel_id {
                        return;
                    }
                    for (src, dst) in [(u, v), (v, u)] {
                        let i = src.index();
                        if i >= node_start && i < node_end {
                            let c = &mut cursor[i - node_start];
                            staging[*c as usize] = dst;
                            *c += 1;
                        }
                    }
                });

                // Per node: sort + dedup (the `Csr::from_directed_edges`
                // semantics), compacting in place and extending the global
                // offsets; then slice out and write each finished shard.
                let mut compact = 0usize;
                let mut shard_bounds = Vec::with_capacity(next_shard - wave_start);
                let mut si = wave_start;
                let mut shard_base = 0usize;
                for local in 0..span {
                    let (s, e) = (local_off[local] as usize, cursor[local] as usize);
                    staging[s..e].sort_unstable();
                    let mut prev: Option<NodeId> = None;
                    let mut w = compact;
                    for idx in s..e {
                        let t = staging[idx];
                        if prev != Some(t) {
                            staging[w] = t;
                            w += 1;
                            prev = Some(t);
                        }
                    }
                    let deg = w - compact;
                    compact = w;
                    let node = node_start + local;
                    let prev_off = *offsets[rel].last().unwrap_or(&0);
                    let deg32 = u32::try_from(deg)
                        .ok()
                        .and_then(|d| prev_off.checked_add(d))
                        .ok_or(ShardError::Inconsistent("offsets overflow u32"))?;
                    offsets[rel].push(deg32);
                    if node + 1 == table[si].end as usize {
                        shard_bounds.push((si, shard_base, compact));
                        shard_base = compact;
                        si += 1;
                    }
                }
                for (shard_idx, lo, hi) in shard_bounds {
                    let meta = ShardMeta {
                        start: table[shard_idx].start,
                        end: table[shard_idx].end,
                        num_targets: shard_codec::size_u32(hi - lo, "shard target count"),
                    };
                    table[shard_idx] = meta;
                    let bytes = shard_codec::encode_shard(
                        shard_codec::size_u16(rel, "relation id"),
                        shard_codec::size_u32(shard_idx, "shard index"),
                        &meta,
                        &staging[lo..hi],
                    );
                    mhg_ckpt::atomic_write(shard_file(dir, rel as u16, shard_idx as u32), &bytes)?;
                }
            }
            // Nodes past the last shard (or all nodes of an edgeless
            // relation) have zero degree.
            let tail = *offsets[rel].last().unwrap_or(&0);
            while offsets[rel].len() < num_nodes + 1 {
                offsets[rel].push(tail);
            }
        }

        // Node types are collected last (2 bytes/node, resident anyway).
        let node_types: Vec<NodeTypeId> = (0..num_nodes)
            .map(|i| source.node_type_of(NodeId(i as u32)))
            .collect();
        let manifest = Manifest {
            schema,
            node_types,
            shards: plan,
            offsets,
        };
        mhg_ckpt::atomic_write(
            dir.join(MANIFEST_FILE),
            &shard_codec::encode_manifest(&manifest),
        )?;
        Self::open(dir, opts)
    }

    /// Opens an existing sharded store. The manifest is read through
    /// `mhg_ckpt::read_file` (the `mhg-faults` io_read site) and fully
    /// validated; shard files are checksummed lazily on first page-in.
    pub fn open(dir: impl AsRef<Path>, opts: ShardedCsrOptions) -> Result<Self, ShardError> {
        let dir = dir.as_ref().to_path_buf();
        let bytes = mhg_ckpt::read_file(dir.join(MANIFEST_FILE))?;
        let m = shard_codec::decode_manifest(&bytes)?;
        let mut nodes_by_type = vec![Vec::new(); m.schema.num_node_types()];
        for (i, &ty) in m.node_types.iter().enumerate() {
            nodes_by_type[ty.index()].push(NodeId(i as u32));
        }
        Ok(Self {
            dir,
            schema: m.schema,
            node_types: m.node_types,
            nodes_by_type,
            shards: m.shards,
            offsets: m.offsets,
            pager: Pager::new(opts.page_budget_bytes),
            heal: HealState::new(),
        })
    }

    /// The directory holding the manifest and shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current page-cache counters.
    pub fn page_stats(&self) -> PageStats {
        self.pager.stats()
    }

    /// Bytes of metadata held resident (node types, offsets, shard tables).
    pub fn resident_metadata_bytes(&self) -> usize {
        let offs: usize = self.offsets.iter().map(|o| o.len().saturating_mul(4)).sum();
        let tables: usize = self.shards.iter().map(|t| t.len().saturating_mul(12)).sum();
        self.node_types.len().saturating_mul(2) + offs + tables
    }

    /// Total size of the on-disk files (manifest + shards), in bytes.
    pub fn on_disk_bytes(&self) -> Result<u64, ShardError> {
        let mut total = std::fs::metadata(self.dir.join(MANIFEST_FILE))?.len();
        for (rel, table) in self.shards.iter().enumerate() {
            for shard in 0..table.len() {
                total += std::fs::metadata(shard_file(&self.dir, rel as u16, shard as u32))?.len();
            }
        }
        Ok(total)
    }

    /// Pages in every shard once, verifying checksums and manifest
    /// consistency. A freshly copied or possibly damaged store can be
    /// validated up front instead of failing mid-walk.
    pub fn verify(&self) -> Result<(), ShardError> {
        for (rel, table) in self.shards.iter().enumerate() {
            for (shard, meta) in table.iter().enumerate() {
                self.load_page(rel as u16, shard as u32, meta)?;
            }
        }
        Ok(())
    }

    /// Fallible neighbor access: `f` runs over the sorted neighbor slice,
    /// or a typed error surfaces if the backing shard is missing or
    /// corrupt.
    pub fn try_with_neighbors<T>(
        &self,
        v: NodeId,
        r: RelationId,
        f: impl FnOnce(&[NodeId]) -> T,
    ) -> Result<T, ShardError> {
        let off = &self.offsets[r.index()];
        let (s, e) = (off[v.index()] as usize, off[v.index() + 1] as usize);
        if s == e {
            return Ok(f(&[]));
        }
        let table = &self.shards[r.index()];
        let si = match table.binary_search_by(|m| {
            if v.0 < m.start {
                std::cmp::Ordering::Greater
            } else if v.0 >= m.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => return Err(ShardError::Inconsistent("node outside every shard")),
        };
        let meta = &table[si];
        let page = self.load_page(r.0, si as u32, meta)?;
        let base = off[meta.start as usize] as usize;
        let (lo, hi) = (s - base, e - base);
        if hi > page.len() || lo > hi {
            return Err(ShardError::Inconsistent("offsets exceed shard payload"));
        }
        Ok(f(&page[lo..hi]))
    }

    fn load_page(
        &self,
        relation: u16,
        shard: u32,
        meta: &ShardMeta,
    ) -> Result<Arc<Vec<NodeId>>, ShardError> {
        // A page-in on a cache miss runs the full self-healing ladder:
        // bounded retries with backoff, rebuild-from-source repair, and
        // quarantine on exhaustion (see `heal.rs`).
        self.pager.get((relation, shard), || {
            self.load_shard_healing(relation, shard, meta)
        })
    }
}

/// Panic-message prefix of a paged store failure escaping the infallible
/// [`GraphStore`] API. The training pipeline's sampler-panic containment
/// matches on this prefix to classify the panic as a storage failure
/// (deterministic — not worth an inline replay) rather than a generic
/// worker crash.
pub const STORE_FAILURE_PREFIX: &str = "sharded graph store failure";

/// A paged store failure inside the infallible [`GraphStore`] API. The
/// training pipeline's contained-sampler-panic recovery absorbs this;
/// callers wanting typed errors use [`ShardedCsr::try_with_neighbors`] or
/// [`ShardedCsr::verify`] instead.
fn store_failure(e: ShardError) -> ! {
    panic!("{STORE_FAILURE_PREFIX}: {e}")
}

impl GraphStore for ShardedCsr {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    #[inline]
    fn node_type(&self, v: NodeId) -> NodeTypeId {
        self.node_types[v.index()]
    }

    fn nodes_of_type(&self, ty: NodeTypeId) -> &[NodeId] {
        &self.nodes_by_type[ty.index()]
    }

    #[inline]
    fn degree(&self, v: NodeId, r: RelationId) -> usize {
        let off = &self.offsets[r.index()];
        (off[v.index() + 1] - off[v.index()]) as usize
    }

    fn num_directed_edges_in(&self, r: RelationId) -> usize {
        self.offsets[r.index()].last().copied().unwrap_or(0) as usize
    }

    fn with_neighbors<T>(&self, v: NodeId, r: RelationId, f: impl FnOnce(&[NodeId]) -> T) -> T {
        match self.try_with_neighbors(v, r, f) {
            Ok(t) => t,
            Err(e) => store_failure(e),
        }
    }
}
