//! Compressed sparse row adjacency.

use crate::NodeId;

/// CSR adjacency for one relation-specific subgraph.
///
/// Neighbor lists are sorted, enabling O(log d) membership tests via binary
/// search. Edges are undirected: both directions are stored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR from an (unsorted, possibly duplicated) directed edge
    /// list over `num_nodes` nodes. Duplicates are removed.
    pub fn from_directed_edges(num_nodes: usize, edges: &mut Vec<(NodeId, NodeId)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut offsets = vec![0u32; num_nodes + 1];
        for &(u, _) in edges.iter() {
            offsets[u.index() + 1] += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let targets = edges.iter().map(|&(_, v)| v).collect();
        Self { offsets, targets }
    }

    /// An empty CSR over `num_nodes` nodes.
    pub fn empty(num_nodes: usize) -> Self {
        Self {
            offsets: vec![0; num_nodes + 1],
            targets: Vec::new(),
        }
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let (s, e) = (
            self.offsets[v.index()] as usize,
            self.offsets[v.index() + 1] as usize,
        );
        &self.targets[s..e]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Whether the directed edge `u → v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Number of stored (directed) edges.
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Number of nodes the CSR was built over.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Iterates over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            let u = NodeId(u as u32);
            self.neighbors(u).iter().map(move |&v| (u, v))
        })
    }

    /// Raw offsets (test-only; persistence streams via [`crate::GraphStore`]).
    #[cfg(test)]
    pub(crate) fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Raw targets (test-only; persistence streams via [`crate::GraphStore`]).
    #[cfg(test)]
    pub(crate) fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Reassembles from raw parts (for persistence).
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotone or don't cover `targets`.
    pub(crate) fn from_parts(offsets: Vec<u32>, targets: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            offsets.last().copied().unwrap_or(0) as usize,
            targets.len(),
            "offsets must cover targets"
        );
        Self { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn build_and_query() {
        let mut edges = vec![(n(0), n(1)), (n(1), n(0)), (n(0), n(2)), (n(2), n(0))];
        let csr = Csr::from_directed_edges(3, &mut edges);
        assert_eq!(csr.neighbors(n(0)), &[n(1), n(2)]);
        assert_eq!(csr.degree(n(0)), 2);
        assert_eq!(csr.degree(n(1)), 1);
        assert!(csr.has_edge(n(0), n(2)));
        assert!(!csr.has_edge(n(1), n(2)));
        assert_eq!(csr.num_directed_edges(), 4);
    }

    #[test]
    fn duplicates_removed() {
        let mut edges = vec![(n(0), n(1)), (n(0), n(1)), (n(0), n(1))];
        let csr = Csr::from_directed_edges(2, &mut edges);
        assert_eq!(csr.num_directed_edges(), 1);
    }

    #[test]
    fn empty_nodes_have_no_neighbors() {
        let csr = Csr::empty(4);
        for i in 0..4 {
            assert_eq!(csr.degree(n(i)), 0);
            assert!(csr.neighbors(n(i)).is_empty());
        }
    }

    #[test]
    fn edge_iteration() {
        let mut edges = vec![(n(1), n(2)), (n(0), n(1))];
        let csr = Csr::from_directed_edges(3, &mut edges);
        let all: Vec<_> = csr.edges().collect();
        assert_eq!(all, vec![(n(0), n(1)), (n(1), n(2))]);
    }

    #[test]
    fn parts_roundtrip() {
        let mut edges = vec![(n(0), n(1)), (n(1), n(0))];
        let csr = Csr::from_directed_edges(2, &mut edges);
        let rebuilt = Csr::from_parts(csr.offsets().to_vec(), csr.targets().to_vec());
        assert_eq!(csr, rebuilt);
    }
}
