//! The multiplex heterogeneous graph and its builder.

use crate::csr::Csr;
use crate::schema::Schema;
use crate::{NodeId, NodeTypeId, RelationId};

/// Incrementally builds a [`MultiplexGraph`].
///
/// # Example
///
/// ```
/// use mhg_graph::{GraphBuilder, Schema};
///
/// let mut schema = Schema::new();
/// let user = schema.add_node_type("user");
/// let video = schema.add_node_type("video");
/// let like = schema.add_relation("like");
///
/// let mut b = GraphBuilder::new(schema);
/// let u = b.add_node(user);
/// let v = b.add_node(video);
/// b.add_edge(u, v, like);
/// let g = b.build();
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.num_edges(), 1);
/// ```
pub struct GraphBuilder {
    schema: Schema,
    node_types: Vec<NodeTypeId>,
    edges: Vec<(NodeId, NodeId, RelationId)>,
}

impl GraphBuilder {
    /// Creates a builder over a fixed schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            node_types: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a node of the given type and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the type is not in the schema.
    pub fn add_node(&mut self, ty: NodeTypeId) -> NodeId {
        assert!(
            ty.index() < self.schema.num_node_types(),
            "unknown node type {ty:?}"
        );
        let id = NodeId(self.node_types.len() as u32);
        self.node_types.push(ty);
        id
    }

    /// Adds `count` nodes of the given type, returning the contiguous range.
    pub fn add_nodes(&mut self, ty: NodeTypeId, count: usize) -> std::ops::Range<u32> {
        let start = self.node_types.len() as u32;
        for _ in 0..count {
            self.add_node(ty);
        }
        start..self.node_types.len() as u32
    }

    /// Adds an undirected edge under relation `r`.
    ///
    /// Self-loops are rejected; duplicate edges are deduplicated at build.
    ///
    /// # Panics
    ///
    /// Panics on unknown endpoints/relation or a self-loop.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, r: RelationId) {
        assert!(u != v, "self-loops are not allowed ({u:?})");
        assert!(
            u.index() < self.node_types.len() && v.index() < self.node_types.len(),
            "edge endpoint out of range"
        );
        assert!(
            r.index() < self.schema.num_relations(),
            "unknown relation {r:?}"
        );
        self.edges.push((u, v, r));
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Finalises into an immutable graph.
    pub fn build(self) -> MultiplexGraph {
        let num_nodes = self.node_types.len();
        let num_relations = self.schema.num_relations();

        // Split the edge list per relation, adding both directions.
        let mut per_rel: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); num_relations];
        for (u, v, r) in self.edges {
            per_rel[r.index()].push((u, v));
            per_rel[r.index()].push((v, u));
        }

        let adjacency = per_rel
            .into_iter()
            .map(|mut edges| Csr::from_directed_edges(num_nodes, &mut edges))
            .collect();

        let mut nodes_by_type = vec![Vec::new(); self.schema.num_node_types()];
        for (i, &ty) in self.node_types.iter().enumerate() {
            nodes_by_type[ty.index()].push(NodeId(i as u32));
        }

        MultiplexGraph {
            schema: self.schema,
            node_types: self.node_types,
            nodes_by_type,
            adjacency,
        }
    }
}

/// An immutable multiplex heterogeneous network (paper Def. 2): nodes carry
/// a type from `O`; each pair of nodes may be connected under multiple
/// relations from `R`, stored as one undirected CSR per relation.
#[derive(Clone, Debug)]
pub struct MultiplexGraph {
    schema: Schema,
    node_types: Vec<NodeTypeId>,
    nodes_by_type: Vec<Vec<NodeId>>,
    adjacency: Vec<Csr>,
}

impl MultiplexGraph {
    /// The graph's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of nodes (`|V|`).
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of undirected edges (`|E|`), summed over relations.
    pub fn num_edges(&self) -> usize {
        self.adjacency
            .iter()
            .map(|csr| csr.num_directed_edges() / 2)
            .sum()
    }

    /// Number of undirected edges under relation `r`.
    pub fn num_edges_in(&self, r: RelationId) -> usize {
        self.adjacency[r.index()].num_directed_edges() / 2
    }

    /// The type of node `v`.
    #[inline]
    pub fn node_type(&self, v: NodeId) -> NodeTypeId {
        self.node_types[v.index()]
    }

    /// All nodes of type `ty`, in id order.
    pub fn nodes_of_type(&self, ty: NodeTypeId) -> &[NodeId] {
        &self.nodes_by_type[ty.index()]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_types.len() as u32).map(NodeId)
    }

    /// Sorted neighbors of `v` under relation `r` (the paper's `N_r(v)`).
    #[inline]
    pub fn neighbors(&self, v: NodeId, r: RelationId) -> &[NodeId] {
        self.adjacency[r.index()].neighbors(v)
    }

    /// Degree of `v` under relation `r`.
    #[inline]
    pub fn degree(&self, v: NodeId, r: RelationId) -> usize {
        self.adjacency[r.index()].degree(v)
    }

    /// Total degree of `v` across all relations.
    pub fn total_degree(&self, v: NodeId) -> usize {
        self.schema.relations().map(|r| self.degree(v, r)).sum()
    }

    /// Relations under which `v` has at least one neighbor — the support of
    /// the paper's Eq. 1 relation-sampling distribution.
    pub fn active_relations(&self, v: NodeId) -> Vec<RelationId> {
        self.schema
            .relations()
            .filter(|&r| self.degree(v, r) > 0)
            .collect()
    }

    /// Whether `u` and `v` are connected under relation `r`.
    pub fn has_edge(&self, u: NodeId, v: NodeId, r: RelationId) -> bool {
        self.adjacency[r.index()].has_edge(u, v)
    }

    /// Whether `u` and `v` are connected under *any* relation.
    pub fn has_any_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.schema.relations().any(|r| self.has_edge(u, v, r))
    }

    /// Iterates over the undirected edges of relation `r` (each reported
    /// once, with `u < v`).
    pub fn edges_in(&self, r: RelationId) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency[r.index()].edges().filter(|&(u, v)| u < v)
    }

    /// Induces the sub-multiplex containing only the given relations
    /// (the relation-specific subgraph family `g_{r_i, …, r_k}` used by the
    /// paper's Table VII uplift experiment). Node set is unchanged; the
    /// relation ids are renumbered in the order given.
    ///
    /// # Panics
    ///
    /// Panics if `relations` is empty or contains an unknown id.
    pub fn induce_relations(&self, relations: &[RelationId]) -> MultiplexGraph {
        assert!(!relations.is_empty(), "must keep at least one relation");
        let mut schema = Schema::new();
        for name in self.schema.node_type_names() {
            schema.add_node_type(name);
        }
        for &r in relations {
            schema.add_relation(self.schema.relation_name(r));
        }
        let adjacency = relations
            .iter()
            .map(|&r| self.adjacency[r.index()].clone())
            .collect();
        MultiplexGraph {
            schema,
            node_types: self.node_types.clone(),
            nodes_by_type: self.nodes_by_type.clone(),
            adjacency,
        }
    }

    /// The relation-specific subgraph `g_r` as a single-relation multiplex.
    pub fn relation_subgraph(&self, r: RelationId) -> MultiplexGraph {
        self.induce_relations(&[r])
    }

    pub(crate) fn adjacency(&self) -> &[Csr] {
        &self.adjacency
    }

    pub(crate) fn from_parts(
        schema: Schema,
        node_types: Vec<NodeTypeId>,
        adjacency: Vec<Csr>,
    ) -> Self {
        let mut nodes_by_type = vec![Vec::new(); schema.num_node_types()];
        for (i, &ty) in node_types.iter().enumerate() {
            nodes_by_type[ty.index()].push(NodeId(i as u32));
        }
        Self {
            schema,
            node_types,
            nodes_by_type,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two users, one video; u0 likes & comments the video, u1 likes it.
    fn tiny() -> MultiplexGraph {
        let mut schema = Schema::new();
        let user = schema.add_node_type("user");
        let video = schema.add_node_type("video");
        let like = schema.add_relation("like");
        let comment = schema.add_relation("comment");

        let mut b = GraphBuilder::new(schema);
        let u0 = b.add_node(user);
        let u1 = b.add_node(user);
        let v = b.add_node(video);
        b.add_edge(u0, v, like);
        b.add_edge(u0, v, comment);
        b.add_edge(u1, v, like);
        b.build()
    }

    #[test]
    fn multiplexity_counts() {
        let g = tiny();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        let like = g.schema().relation_id("like").unwrap();
        let comment = g.schema().relation_id("comment").unwrap();
        assert_eq!(g.num_edges_in(like), 2);
        assert_eq!(g.num_edges_in(comment), 1);
        // Same pair connected under two relations — the multiplexity property.
        assert!(g.has_edge(NodeId(0), NodeId(2), like));
        assert!(g.has_edge(NodeId(0), NodeId(2), comment));
        assert!(!g.has_edge(NodeId(1), NodeId(2), comment));
    }

    #[test]
    fn typed_node_queries() {
        let g = tiny();
        let user = g.schema().node_type_id("user").unwrap();
        let video = g.schema().node_type_id("video").unwrap();
        assert_eq!(g.nodes_of_type(user), &[NodeId(0), NodeId(1)]);
        assert_eq!(g.nodes_of_type(video), &[NodeId(2)]);
        assert_eq!(g.node_type(NodeId(2)), video);
    }

    #[test]
    fn neighbors_are_undirected() {
        let g = tiny();
        let like = g.schema().relation_id("like").unwrap();
        assert_eq!(g.neighbors(NodeId(2), like), &[NodeId(0), NodeId(1)]);
        assert_eq!(g.neighbors(NodeId(0), like), &[NodeId(2)]);
        assert_eq!(g.degree(NodeId(2), like), 2);
        assert_eq!(g.total_degree(NodeId(0)), 2);
    }

    #[test]
    fn active_relations_excludes_empty() {
        let g = tiny();
        let like = g.schema().relation_id("like").unwrap();
        let comment = g.schema().relation_id("comment").unwrap();
        assert_eq!(g.active_relations(NodeId(0)), vec![like, comment]);
        assert_eq!(g.active_relations(NodeId(1)), vec![like]);
    }

    #[test]
    fn induce_relations_renumbers() {
        let g = tiny();
        let comment = g.schema().relation_id("comment").unwrap();
        let sub = g.induce_relations(&[comment]);
        assert_eq!(sub.schema().num_relations(), 1);
        assert_eq!(sub.num_edges(), 1);
        let r0 = RelationId(0);
        assert_eq!(sub.schema().relation_name(r0), "comment");
        assert!(sub.has_edge(NodeId(0), NodeId(2), r0));
        // Node set is preserved even for nodes isolated in the subgraph.
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.degree(NodeId(1), r0), 0);
    }

    #[test]
    fn edges_in_reports_each_once() {
        let g = tiny();
        let like = g.schema().relation_id("like").unwrap();
        let edges: Vec<_> = g.edges_in(like).collect();
        assert_eq!(edges, vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r = schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let n = b.add_node(t);
        b.add_edge(n, n, r);
    }

    #[test]
    fn duplicate_edges_dedup() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r = schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let a = b.add_node(t);
        let c = b.add_node(t);
        b.add_edge(a, c, r);
        b.add_edge(c, a, r);
        b.add_edge(a, c, r);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn add_nodes_range() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let range = b.add_nodes(t, 5);
        assert_eq!(range, 0..5);
        let range2 = b.add_nodes(t, 3);
        assert_eq!(range2, 5..8);
    }
}
