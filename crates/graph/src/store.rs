//! The [`GraphStore`] abstraction: one neighbor-access contract shared by
//! the in-RAM [`MultiplexGraph`] and the chunk-paged
//! [`ShardedCsr`](crate::ShardedCsr).
//!
//! Every sampler and walker in `mhg-sampling` is written against this trait,
//! so the same walk code runs over a graph held entirely in memory or over
//! one streamed shard-by-shard from disk. The core primitive is
//! [`GraphStore::with_neighbors`]: neighbor lists are exposed to a closure
//! as a sorted `&[NodeId]` slice rather than returned by reference, which
//! lets a paged backend hold the backing page alive only for the duration of
//! the call.
//!
//! # Determinism contract
//!
//! Implementations must present *identical* neighbor lists for the same
//! logical graph: sorted ascending, deduplicated, both directions of every
//! undirected edge. Samplers draw RNG values against `degree`/`neighbor_at`,
//! so any two conforming stores produce bit-identical walk streams from the
//! same seeds (pinned by the golden-hash parity tests in
//! `crates/sampling/tests/store_parity.rs`).

use crate::{MultiplexGraph, NodeId, NodeTypeId, RelationId, Schema};

/// Uniform read-only access to a multiplex heterogeneous graph.
///
/// `Sync` is a supertrait: walk generation shards work across the
/// deterministic `mhg-par` pool, which shares the store by reference.
pub trait GraphStore: Sync {
    /// The graph's schema.
    fn schema(&self) -> &Schema;

    /// Number of nodes (`|V|`).
    fn num_nodes(&self) -> usize;

    /// The type of node `v`.
    fn node_type(&self, v: NodeId) -> NodeTypeId;

    /// All nodes of type `ty`, in id order.
    fn nodes_of_type(&self, ty: NodeTypeId) -> &[NodeId];

    /// Degree of `v` under relation `r`. Must be O(1): offset arithmetic
    /// only, no neighbor materialization.
    fn degree(&self, v: NodeId, r: RelationId) -> usize;

    /// Number of stored directed edges under relation `r` (twice the
    /// undirected count).
    fn num_directed_edges_in(&self, r: RelationId) -> usize;

    /// Runs `f` over the sorted, deduplicated neighbor list of `v` under
    /// `r`. The slice is only valid inside the closure — a paged backend may
    /// evict the backing chunk afterwards.
    fn with_neighbors<T>(&self, v: NodeId, r: RelationId, f: impl FnOnce(&[NodeId]) -> T) -> T;

    // ---- provided methods -------------------------------------------------

    /// The id range of all nodes; iterate with `.map(NodeId)`.
    fn node_id_range(&self) -> std::ops::Range<u32> {
        0..self.num_nodes() as u32
    }

    /// The `i`-th neighbor of `v` under `r` (lists are sorted ascending).
    #[inline]
    fn neighbor_at(&self, v: NodeId, r: RelationId, i: usize) -> NodeId {
        self.with_neighbors(v, r, |ns| ns[i])
    }

    /// Appends the neighbor list of `v` under `r` to `out`.
    fn push_neighbors(&self, v: NodeId, r: RelationId, out: &mut Vec<NodeId>) {
        self.with_neighbors(v, r, |ns| out.extend_from_slice(ns));
    }

    /// Total degree of `v` across all relations.
    fn total_degree(&self, v: NodeId) -> usize {
        self.schema().relations().map(|r| self.degree(v, r)).sum()
    }

    /// Relations under which `v` has at least one neighbor — the support of
    /// the paper's Eq. 1 relation-sampling distribution.
    fn active_relations(&self, v: NodeId) -> Vec<RelationId> {
        self.schema()
            .relations()
            .filter(|&r| self.degree(v, r) > 0)
            .collect()
    }

    /// Whether `u` and `v` are connected under relation `r` (binary search
    /// over the sorted neighbor list).
    fn has_edge(&self, u: NodeId, v: NodeId, r: RelationId) -> bool {
        self.with_neighbors(u, r, |ns| ns.binary_search(&v).is_ok())
    }

    /// Whether `u` and `v` are connected under *any* relation.
    fn has_any_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.schema().relations().any(|r| self.has_edge(u, v, r))
    }

    /// Number of undirected edges under relation `r`.
    fn num_edges_in(&self, r: RelationId) -> usize {
        self.num_directed_edges_in(r) / 2
    }

    /// Number of undirected edges (`|E|`), summed over relations.
    fn num_edges(&self) -> usize {
        self.schema()
            .relations()
            .map(|r| self.num_edges_in(r))
            .sum()
    }
}

impl GraphStore for MultiplexGraph {
    fn schema(&self) -> &Schema {
        MultiplexGraph::schema(self)
    }

    fn num_nodes(&self) -> usize {
        MultiplexGraph::num_nodes(self)
    }

    #[inline]
    fn node_type(&self, v: NodeId) -> NodeTypeId {
        MultiplexGraph::node_type(self, v)
    }

    fn nodes_of_type(&self, ty: NodeTypeId) -> &[NodeId] {
        MultiplexGraph::nodes_of_type(self, ty)
    }

    #[inline]
    fn degree(&self, v: NodeId, r: RelationId) -> usize {
        MultiplexGraph::degree(self, v, r)
    }

    fn num_directed_edges_in(&self, r: RelationId) -> usize {
        self.adjacency()[r.index()].num_directed_edges()
    }

    #[inline]
    fn with_neighbors<T>(&self, v: NodeId, r: RelationId, f: impl FnOnce(&[NodeId]) -> T) -> T {
        f(self.neighbors(v, r))
    }

    #[inline]
    fn neighbor_at(&self, v: NodeId, r: RelationId, i: usize) -> NodeId {
        self.neighbors(v, r)[i]
    }

    fn has_edge(&self, u: NodeId, v: NodeId, r: RelationId) -> bool {
        MultiplexGraph::has_edge(self, u, v, r)
    }

    fn total_degree(&self, v: NodeId) -> usize {
        MultiplexGraph::total_degree(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Schema};

    fn tiny() -> MultiplexGraph {
        let mut schema = Schema::new();
        let user = schema.add_node_type("user");
        let video = schema.add_node_type("video");
        let like = schema.add_relation("like");
        let comment = schema.add_relation("comment");
        let mut b = GraphBuilder::new(schema);
        let u0 = b.add_node(user);
        let u1 = b.add_node(user);
        let v = b.add_node(video);
        b.add_edge(u0, v, like);
        b.add_edge(u0, v, comment);
        b.add_edge(u1, v, like);
        b.build()
    }

    /// Exercises the trait surface through a generic fn, the way samplers do.
    fn summarize<G: GraphStore>(g: &G) -> (usize, usize, usize, Vec<NodeId>) {
        let like = g.schema().relation_id("like").unwrap();
        let mut ns = Vec::new();
        g.push_neighbors(NodeId(2), like, &mut ns);
        (g.num_nodes(), g.num_edges(), g.total_degree(NodeId(0)), ns)
    }

    #[test]
    fn trait_mirrors_inherent_api() {
        let g = tiny();
        let (n, e, d, ns) = summarize(&g);
        assert_eq!(n, 3);
        assert_eq!(e, 3);
        assert_eq!(d, 2);
        assert_eq!(ns, vec![NodeId(0), NodeId(1)]);
        let like = GraphStore::schema(&g).relation_id("like").unwrap();
        assert_eq!(GraphStore::neighbor_at(&g, NodeId(2), like, 1), NodeId(1));
        assert!(GraphStore::has_any_edge(&g, NodeId(1), NodeId(2)));
        assert_eq!(GraphStore::active_relations(&g, NodeId(1)), vec![like]);
        assert_eq!(g.node_id_range(), 0..3);
    }
}
