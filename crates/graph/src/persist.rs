//! Binary snapshot persistence for [`MultiplexGraph`].
//!
//! A small hand-rolled codec over [`bytes`]: length-prefixed strings and
//! little-endian arrays, with a magic header and version byte. Used by the
//! benchmark harness to cache generated datasets between runs.
//!
//! Decoding is hardened against hostile input: every length prefix is
//! validated against the bytes actually remaining before any allocation, so
//! corrupt or truncated snapshots produce a typed [`DecodeError`] — never a
//! panic or an attempted multi-gigabyte allocation. Writes go through
//! [`mhg_ckpt::atomic_write`], so a crash mid-save leaves the previous
//! snapshot intact.

use std::io;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::csr::Csr;
use crate::store::GraphStore;
use crate::{MultiplexGraph, NodeId, NodeTypeId, Schema};

const MAGIC: &[u8; 4] = b"MHG1";
const VERSION: u8 = 1;

/// Errors produced when decoding a snapshot.
#[derive(Debug)]
pub enum DecodeError {
    /// The buffer did not start with the expected magic bytes.
    BadMagic,
    /// Snapshot version not supported by this build.
    UnsupportedVersion(u8),
    /// The buffer ended prematurely or contained inconsistent lengths.
    Truncated,
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an MHG snapshot (bad magic)"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            DecodeError::Truncated => write!(f, "snapshot truncated or inconsistent"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in snapshot string"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Checked narrowing of a count to a `u32` wire field: a graph too large
/// for the format must fail loudly instead of wrapping into a corrupt
/// snapshot.
fn size_u32(n: usize, what: &str) -> u32 {
    assert!(
        u32::try_from(n).is_ok(),
        "encode: {what} {n} exceeds the u32 snapshot format"
    );
    n as u32
}

/// Checked narrowing of a count to a `u16` wire field.
fn size_u16(n: usize, what: &str) -> u16 {
    assert!(
        u16::try_from(n).is_ok(),
        "encode: {what} {n} exceeds the u16 snapshot format"
    );
    n as u16
}

/// Serialises any graph store to bytes.
///
/// The CSR sections are reconstructed from the [`GraphStore`] contract
/// (degrees and sorted neighbor lists), so a [`crate::ShardedCsr`] snapshots
/// to bytes identical to the in-RAM graph built from the same edges.
pub fn encode<G: GraphStore>(graph: &G) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + graph.num_nodes() * 6 + graph.num_edges() * 10);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);

    let schema = graph.schema();
    put_str_list(&mut buf, schema.node_type_names());
    put_str_list(&mut buf, schema.relation_names());

    buf.put_u32_le(size_u32(graph.num_nodes(), "node count"));
    for v in graph.node_id_range().map(NodeId) {
        buf.put_u16_le(graph.node_type(v).0);
    }

    for r in schema.relations() {
        buf.put_u32_le(size_u32(graph.num_nodes() + 1, "CSR offset count"));
        let mut off = 0u32;
        buf.put_u32_le(off);
        for v in graph.node_id_range().map(NodeId) {
            let d = size_u32(graph.degree(v, r), "node degree");
            off = off
                .checked_add(d)
                .unwrap_or_else(|| size_u32(usize::MAX, "CSR offset"));
            buf.put_u32_le(off);
        }
        buf.put_u32_le(size_u32(graph.num_directed_edges_in(r), "CSR target count"));
        for v in graph.node_id_range().map(NodeId) {
            graph.with_neighbors(v, r, |ns| {
                for &t in ns {
                    buf.put_u32_le(t.0);
                }
            });
        }
    }

    buf.freeze()
}

/// Deserialises a graph from bytes.
pub fn decode(mut buf: &[u8]) -> Result<MultiplexGraph, DecodeError> {
    if buf.remaining() < 5 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }

    let node_type_names = get_str_list(&mut buf)?;
    let relation_names = get_str_list(&mut buf)?;
    let mut schema = Schema::new();
    for n in &node_type_names {
        schema.add_node_type(n);
    }
    for r in &relation_names {
        schema.add_relation(r);
    }

    let num_nodes = get_u32(&mut buf)? as usize;
    // Each node type costs 2 bytes; a length prefix promising more nodes
    // than the buffer can hold is corrupt. Checking before the allocation
    // keeps hostile prefixes from reserving gigabytes.
    if num_nodes
        .checked_mul(2)
        .is_none_or(|need| need > buf.remaining())
    {
        return Err(DecodeError::Truncated);
    }
    let mut node_types = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let t = buf.get_u16_le();
        if t as usize >= schema.num_node_types() {
            return Err(DecodeError::Truncated);
        }
        node_types.push(NodeTypeId(t));
    }

    let mut adjacency = Vec::with_capacity(schema.num_relations());
    for _ in 0..schema.num_relations() {
        let n_off = get_u32(&mut buf)? as usize;
        if n_off != num_nodes + 1 {
            return Err(DecodeError::Truncated);
        }
        if n_off
            .checked_mul(4)
            .is_none_or(|need| need > buf.remaining())
        {
            return Err(DecodeError::Truncated);
        }
        let mut offsets = Vec::with_capacity(n_off);
        for _ in 0..n_off {
            offsets.push(get_u32(&mut buf)?);
        }
        let n_tgt = get_u32(&mut buf)? as usize;
        if offsets.last().is_none_or(|&last| last as usize != n_tgt) {
            return Err(DecodeError::Truncated);
        }
        if n_tgt
            .checked_mul(4)
            .is_none_or(|need| need > buf.remaining())
        {
            return Err(DecodeError::Truncated);
        }
        let mut targets = Vec::with_capacity(n_tgt);
        for _ in 0..n_tgt {
            let t = get_u32(&mut buf)?;
            if t as usize >= num_nodes {
                return Err(DecodeError::Truncated);
            }
            targets.push(NodeId(t));
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(DecodeError::Truncated);
        }
        adjacency.push(Csr::from_parts(offsets, targets));
    }

    Ok(MultiplexGraph::from_parts(schema, node_types, adjacency))
}

/// Writes a snapshot to a file atomically (write-temp + fsync + rename):
/// a crash mid-save never leaves a half-written snapshot at `path`.
pub fn save(graph: &MultiplexGraph, path: impl AsRef<Path>) -> io::Result<()> {
    mhg_ckpt::atomic_write(path, &encode(graph))
}

/// Reads a snapshot from a file.
pub fn load(path: impl AsRef<Path>) -> io::Result<MultiplexGraph> {
    let data = std::fs::read(path)?;
    decode(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn put_str_list(buf: &mut BytesMut, items: &[String]) {
    buf.put_u16_le(size_u16(items.len(), "string-list length"));
    for s in items {
        buf.put_u16_le(size_u16(s.len(), "string length"));
        buf.put_slice(s.as_bytes());
    }
}

fn get_str_list(buf: &mut &[u8]) -> Result<Vec<String>, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u16_le() as usize;
    // Every entry needs at least its 2-byte length prefix.
    if n.checked_mul(2).is_none_or(|need| need > buf.remaining()) {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 2 {
            return Err(DecodeError::Truncated);
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len {
            return Err(DecodeError::Truncated);
        }
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        out.push(String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)?);
    }
    Ok(out)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u32_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, RelationId};

    fn sample_graph() -> MultiplexGraph {
        let mut schema = Schema::new();
        let user = schema.add_node_type("user");
        let item = schema.add_node_type("item");
        let view = schema.add_relation("view");
        let buy = schema.add_relation("buy");
        let mut b = GraphBuilder::new(schema);
        let u0 = b.add_node(user);
        let u1 = b.add_node(user);
        let i0 = b.add_node(item);
        let i1 = b.add_node(item);
        b.add_edge(u0, i0, view);
        b.add_edge(u0, i0, buy);
        b.add_edge(u1, i1, view);
        b.add_edge(u0, i1, view);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_graph();
        let bytes = encode(&g);
        let g2 = decode(&bytes).expect("decode");
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.schema(), g2.schema());
        for v in g.nodes() {
            assert_eq!(g.node_type(v), g2.node_type(v));
            for r in g.schema().relations() {
                assert_eq!(g.neighbors(v, r), g2.neighbors(v, r));
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let _guard = mhg_faults::test_guard(); // save() has injectable IO sites
        let g = sample_graph();
        let dir = std::env::temp_dir().join("mhg_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mhg");
        save(&g, &path).unwrap();
        let g2 = load(&path).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(decode(b"nope"), Err(DecodeError::Truncated)));
        assert!(matches!(
            decode(b"XXXX\x01rest"),
            Err(DecodeError::BadMagic)
        ));
        assert!(matches!(
            decode(b"MHG1\x63rest"),
            Err(DecodeError::UnsupportedVersion(0x63))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_cut() {
        let g = sample_graph();
        let bytes = encode(&g);
        // Chop the buffer at EVERY point; decode must error, not panic.
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "cut at {cut} should fail cleanly"
            );
        }
        let _ = RelationId(0); // silence unused import in cfg(test)
    }

    #[test]
    fn survives_every_single_bit_flip() {
        let g = sample_graph();
        let bytes = encode(&g).to_vec();
        // A flipped bit may still decode to a *different valid* graph
        // (e.g. a changed node id that stays in range) — that's fine. What
        // must never happen is a panic or a runaway allocation.
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                let _ = decode(&corrupt);
            }
        }
    }

    #[test]
    fn hostile_length_prefixes_fail_fast_without_allocating() {
        // A header promising u32::MAX nodes with almost no payload must be
        // rejected before any proportional allocation happens.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u16_le(1); // 1 node type
        buf.put_u16_le(1);
        buf.put_slice(b"t");
        buf.put_u16_le(1); // 1 relation
        buf.put_u16_le(1);
        buf.put_slice(b"r");
        buf.put_u32_le(u32::MAX); // hostile node count
        buf.put_u16_le(0);
        assert!(matches!(decode(&buf), Err(DecodeError::Truncated)));

        // Same for a hostile string-list count.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u16_le(u16::MAX); // hostile name count, no payload
        assert!(matches!(decode(&buf), Err(DecodeError::Truncated)));
    }

    #[test]
    fn save_is_atomic_under_injected_io_faults() {
        use mhg_faults::FaultSite;
        let _guard = mhg_faults::test_guard();
        let g = sample_graph();
        let dir = std::env::temp_dir().join("mhg_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mhg");
        save(&g, &path).unwrap();

        // With a write fault armed, the failed save must leave the previous
        // snapshot readable.
        mhg_faults::install(mhg_faults::FaultPlan::new().inject(FaultSite::IoWrite, 1));
        assert!(
            save(&g, &path).is_err(),
            "injected write fault must surface"
        );
        mhg_faults::clear();
        let g2 = load(&path).expect("previous snapshot must survive a failed save");
        assert_eq!(g.num_edges(), g2.num_edges());
        std::fs::remove_file(path).ok();
    }
}
