//! Graph schema: interned node-type and relation vocabularies.

use crate::{NodeTypeId, RelationId};

/// The type vocabulary of a multiplex heterogeneous graph: the paper's
/// `O` (node types) and `R` (relationships).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    node_types: Vec<String>,
    relations: Vec<String>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a schema from name lists.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names within a list.
    pub fn from_names<S: AsRef<str>>(node_types: &[S], relations: &[S]) -> Self {
        let mut schema = Self::new();
        for nt in node_types {
            schema.add_node_type(nt.as_ref());
        }
        for r in relations {
            schema.add_relation(r.as_ref());
        }
        schema
    }

    /// Registers a node type, returning its id. Idempotent per name.
    pub fn add_node_type(&mut self, name: &str) -> NodeTypeId {
        if let Some(id) = self.node_type_id(name) {
            return id;
        }
        assert!(
            self.node_types.len() < u16::MAX as usize,
            "too many node types"
        );
        let id = NodeTypeId(self.node_types.len() as u16);
        self.node_types.push(name.to_string());
        id
    }

    /// Registers a relation, returning its id. Idempotent per name.
    pub fn add_relation(&mut self, name: &str) -> RelationId {
        if let Some(id) = self.relation_id(name) {
            return id;
        }
        assert!(
            self.relations.len() < u16::MAX as usize,
            "too many relations"
        );
        let id = RelationId(self.relations.len() as u16);
        self.relations.push(name.to_string());
        id
    }

    /// Looks up a node type by name.
    pub fn node_type_id(&self, name: &str) -> Option<NodeTypeId> {
        self.node_types
            .iter()
            .position(|n| n == name)
            .map(|i| NodeTypeId(i as u16))
    }

    /// Looks up a relation by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.relations
            .iter()
            .position(|n| n == name)
            .map(|i| RelationId(i as u16))
    }

    /// The name of a node type.
    pub fn node_type_name(&self, id: NodeTypeId) -> &str {
        &self.node_types[id.index()]
    }

    /// The name of a relation.
    pub fn relation_name(&self, id: RelationId) -> &str {
        &self.relations[id.index()]
    }

    /// Number of node types (`|O|`).
    pub fn num_node_types(&self) -> usize {
        self.node_types.len()
    }

    /// Number of relations (`|R|`).
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Iterates over all node-type ids.
    pub fn node_types(&self) -> impl Iterator<Item = NodeTypeId> {
        (0..self.node_types.len() as u16).map(NodeTypeId)
    }

    /// Iterates over all relation ids.
    pub fn relations(&self) -> impl Iterator<Item = RelationId> {
        (0..self.relations.len() as u16).map(RelationId)
    }

    /// All node-type names in id order.
    pub fn node_type_names(&self) -> &[String] {
        &self.node_types
    }

    /// All relation names in id order.
    pub fn relation_names(&self) -> &[String] {
        &self.relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut s = Schema::new();
        let a = s.add_node_type("user");
        let b = s.add_node_type("video");
        let a2 = s.add_node_type("user");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(s.num_node_types(), 2);
        assert_eq!(s.node_type_name(b), "video");
    }

    #[test]
    fn relation_lookup() {
        let s = Schema::from_names(&["item"], &["click", "like"]);
        assert_eq!(s.relation_id("like"), Some(RelationId(1)));
        assert_eq!(s.relation_id("missing"), None);
        assert_eq!(s.num_relations(), 2);
        let rels: Vec<_> = s.relations().collect();
        assert_eq!(rels, vec![RelationId(0), RelationId(1)]);
    }
}
