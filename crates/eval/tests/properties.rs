//! Property-based invariants for the metric implementations.

use mhg_eval::{best_f1_threshold, f1_at, pr_auc, roc_auc, topk_metrics, RankedQuery};
use proptest::prelude::*;

fn scored_labels() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    proptest::collection::vec(((-10.0f32..10.0), any::<bool>()), 2..60).prop_map(|pairs| {
        let (scores, labels): (Vec<f32>, Vec<bool>) = pairs.into_iter().unzip();
        (scores, labels)
    })
}

proptest! {
    #[test]
    fn roc_auc_in_unit_interval((scores, labels) in scored_labels()) {
        let auc = roc_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn roc_auc_complement_under_label_flip((scores, labels) in scored_labels()) {
        let has_both = labels.iter().any(|&l| l) && labels.iter().any(|&l| !l);
        prop_assume!(has_both);
        let auc = roc_auc(&scores, &labels);
        let flipped: Vec<bool> = labels.iter().map(|&l| !l).collect();
        let auc_f = roc_auc(&scores, &flipped);
        prop_assert!((auc + auc_f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn roc_auc_invariant_to_monotone_transform((scores, labels) in scored_labels()) {
        // Positive-affine transform: strictly monotone and tie-preserving
        // in f32 (tanh-style squashing would merge distinct scores).
        let transformed: Vec<f32> = scores.iter().map(|s| s * 0.5 + 1.0).collect();
        let a = roc_auc(&scores, &labels);
        let b = roc_auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn pr_auc_in_unit_interval((scores, labels) in scored_labels()) {
        let auc = pr_auc(&scores, &labels);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&auc));
    }

    #[test]
    fn pr_auc_at_least_prevalence_for_perfect_ranker(n_pos in 1usize..20, n_neg in 1usize..20) {
        // Perfect ranker: positives strictly above negatives.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_pos {
            scores.push(10.0 + i as f32);
            labels.push(true);
        }
        for i in 0..n_neg {
            scores.push(-(i as f32) - 1.0);
            labels.push(false);
        }
        prop_assert!((pr_auc(&scores, &labels) - 1.0).abs() < 1e-9);
        prop_assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f1_bounded((scores, labels) in scored_labels(), t in -10.0f32..10.0) {
        let f1 = f1_at(&scores, &labels, t);
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn best_f1_dominates_arbitrary_threshold((scores, labels) in scored_labels(), t in -10.0f32..10.0) {
        let (_, best) = best_f1_threshold(&scores, &labels);
        prop_assert!(best + 1e-9 >= f1_at(&scores, &labels, t));
    }

    #[test]
    fn topk_bounded(flags in proptest::collection::vec(any::<bool>(), 0..30), k in 1usize..15) {
        let relevant = flags.iter().filter(|&&f| f).count();
        let q = RankedQuery { ranked: flags, num_relevant: relevant };
        let m = topk_metrics(&[q], k);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.hit_ratio));
    }

    #[test]
    fn ndcg_and_mrr_bounded(flags in proptest::collection::vec(any::<bool>(), 1..30), k in 1usize..15) {
        let relevant = flags.iter().filter(|&&f| f).count();
        prop_assume!(relevant > 0);
        let q = RankedQuery { ranked: flags, num_relevant: relevant };
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q.ndcg_at(k)));
        prop_assert!((0.0..=1.0).contains(&q.reciprocal_rank()));
    }

    #[test]
    fn hit_ratio_monotone_in_k(flags in proptest::collection::vec(any::<bool>(), 1..30)) {
        let relevant = flags.iter().filter(|&&f| f).count();
        prop_assume!(relevant > 0);
        let q = RankedQuery { ranked: flags.clone(), num_relevant: relevant };
        let mut prev = 0.0;
        for k in 1..=flags.len() {
            let hr = q.hit_ratio_at(k);
            prop_assert!(hr + 1e-12 >= prev);
            prev = hr;
        }
        // At K = list length all hits are counted.
        prop_assert!((prev - 1.0).abs() < 1e-12);
    }
}
