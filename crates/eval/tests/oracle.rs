//! Hand-computed oracle tests for the ranking and statistics metrics.
//!
//! Unlike the property tests, every expected value here was derived by hand
//! (or by elementary arithmetic) from the metric definitions, so a
//! regression in the formulas themselves — not just their invariants —
//! fails loudly. Covers Recall@K (hit ratio), NDCG@K, and Welch's t-test,
//! including the tie and empty-ground-truth edge cases.

use mhg_eval::{rank_candidates, topk_metrics, welch_t_test, RankedQuery};

const TOL: f64 = 1e-12;

/// ranked = [rel, irr, rel], 2 relevants, K = 3:
/// DCG  = 1/log2(2) + 1/log2(4)          = 1.5
/// IDCG = 1/log2(2) + 1/log2(3)          = 1.63092975...
/// NDCG = 1.5 / IDCG                     = 0.91972078...
#[test]
fn ndcg_hand_computed() {
    let q = RankedQuery {
        ranked: vec![true, false, true],
        num_relevant: 2,
    };
    assert!((q.ndcg_at(3) - 0.919_720_789_148_187_6).abs() < TOL);
}

/// ranked = [rel, irr, rel, irr, rel], 3 relevants, K = 4: only the first
/// two relevants land in the window.
/// hits@4 = 2 ⇒ precision = 2/4, recall = 2/3
/// DCG  = 1 + 0.5 = 1.5;  IDCG = 1 + 1/log2(3) + 0.5
/// NDCG = 0.70391808...
#[test]
fn truncated_window_hand_computed() {
    let q = RankedQuery {
        ranked: vec![true, false, true, false, true],
        num_relevant: 3,
    };
    assert!((q.precision_at(4) - 0.5).abs() < TOL);
    assert!((q.hit_ratio_at(4) - 2.0 / 3.0).abs() < TOL);
    assert!((q.ndcg_at(4) - 0.703_918_089_034_134_7).abs() < TOL);
}

/// Recall@K with more relevants than the window can hold: ranked =
/// [irr, rel], 4 relevants total (candidate list truncated), K = 2 ⇒
/// recall = 1/4, regardless of the truncation.
#[test]
fn recall_with_truncated_candidates() {
    let q = RankedQuery {
        ranked: vec![false, true],
        num_relevant: 4,
    };
    assert!((q.hit_ratio_at(2) - 0.25).abs() < TOL);
}

/// Tied scores: `rank_candidates` sorts by descending score with a stable
/// sort, so equal-score candidates keep their input order. The relevant
/// item listed second among the tie stays second — precision@1 sees only
/// the first.
#[test]
fn ties_resolve_by_stable_input_order() {
    let q = rank_candidates(vec![(0.5, false), (0.5, true), (0.1, false)], 1);
    assert_eq!(q.ranked, vec![false, true, false]);
    assert_eq!(q.precision_at(1), 0.0);
    assert!((q.precision_at(2) - 0.5).abs() < TOL);
    // Swapping the tied pair flips the @1 outcome: order within ties is
    // the caller's responsibility, not hidden nondeterminism.
    let swapped = rank_candidates(vec![(0.5, true), (0.5, false), (0.1, false)], 1);
    assert_eq!(swapped.precision_at(1), 1.0);
}

/// Empty ground truth: all metrics are defined as 0 for a query with no
/// relevant items, and aggregation skips such queries entirely.
#[test]
fn empty_ground_truth_is_zero_and_skipped() {
    let empty = RankedQuery {
        ranked: vec![false, false, false],
        num_relevant: 0,
    };
    assert_eq!(empty.hit_ratio_at(3), 0.0);
    assert_eq!(empty.ndcg_at(3), 0.0);
    assert_eq!(empty.precision_at(3), 0.0);

    let scored = RankedQuery {
        ranked: vec![true, false],
        num_relevant: 1,
    };
    let m = topk_metrics(&[empty.clone(), scored], 2);
    // The empty query must not drag the mean down: only one query counts.
    assert_eq!(m.num_queries, 1);
    assert!((m.precision - 0.5).abs() < TOL);
    assert!((m.hit_ratio - 1.0).abs() < TOL);

    let none = topk_metrics(&[empty], 2);
    assert_eq!(none.num_queries, 0);
    assert_eq!(none.precision, 0.0);
}

/// Welch's t-test on a = [10, 10.1, 9.9] vs b = [9, 9.1, 8.9]:
/// means 10 and 9, both variances 0.01, so
/// t  = 1 / sqrt(0.01/3 + 0.01/3) = sqrt(150) = 12.2474487...
/// df = se⁴ / (2·(0.01/3)²/2)     = 4 exactly (equal variances/sizes).
#[test]
fn welch_t_test_hand_computed() {
    let a = [10.0, 10.1, 9.9];
    let b = [9.0, 9.1, 8.9];
    let r = welch_t_test(&a, &b).expect("both samples have n ≥ 2");
    assert!((r.t - 150.0_f64.sqrt()).abs() < 1e-9, "t {}", r.t);
    assert!((r.df - 4.0).abs() < 1e-9, "df {}", r.df);
    // t = 12.25 at 4 degrees of freedom is far beyond the p = 0.01
    // two-tailed critical value (4.604).
    assert!(r.p_two_tailed < 1e-3, "p {}", r.p_two_tailed);
    // Orientation: positive t when mean(a) > mean(b), and antisymmetric.
    let flipped = welch_t_test(&b, &a).expect("valid");
    assert!((r.t + flipped.t).abs() < 1e-9);
    assert!((r.p_two_tailed - flipped.p_two_tailed).abs() < TOL);
}
