//! Statistical utilities: sample moments and Welch's t-test.
//!
//! The paper reports significance at `p < 0.01` under a t-test against the
//! runner-up baseline; [`welch_t_test`] reproduces that check across
//! repeated training runs.

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n − 1 denominator); 0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Result of a Welch two-sample t-test.
#[derive(Clone, Copy, Debug)]
pub struct TTest {
    /// The t statistic (positive when `mean(a) > mean(b)`).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-tailed p-value.
    pub p_two_tailed: f64,
}

/// Welch's unequal-variance t-test between two samples.
///
/// Returns `None` when either sample has fewer than two points or both
/// variances are zero with equal means (no evidence either way).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTest> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        // Identical constant samples: means equal ⇒ p = 1; otherwise the
        // difference is deterministic ⇒ p = 0.
        return Some(TTest {
            t: if ma == mb { 0.0 } else { f64::INFINITY },
            df: na + nb - 2.0,
            p_two_tailed: if ma == mb { 1.0 } else { 0.0 },
        });
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2.powi(2) / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p = 2.0 * student_t_sf(t.abs(), df);
    Some(TTest {
        t,
        df,
        p_two_tailed: p.clamp(0.0, 1.0),
    })
}

/// Survival function `P(T > t)` of Student's t with `df` degrees of freedom,
/// via the regularised incomplete beta function.
fn student_t_sf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    0.5 * incomplete_beta(df / 2.0, 0.5, x)
}

/// Regularised incomplete beta `I_x(a, b)` by the Lentz continued fraction
/// (Numerical Recipes style).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 1e-12;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos log-gamma.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 7] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_5e-2,
        -0.539_523_938_495_3e-5,
        2.5066282746310005, // sqrt(2π)
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for g in &G[..6] {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (G[6] * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24.
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        // Γ(0.5)=√π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn t_sf_reference_values() {
        // df = 10: P(T > 2.228) ≈ 0.025 (classic 95% two-tail quantile).
        let p = student_t_sf(2.228, 10.0);
        assert!((p - 0.025).abs() < 1e-3, "p {p}");
        // df = 1 (Cauchy): P(T > 1) = 0.25.
        let p = student_t_sf(1.0, 1.0);
        assert!((p - 0.25).abs() < 1e-3, "p {p}");
    }

    #[test]
    fn clearly_different_samples() {
        let a = [10.0, 10.1, 9.9, 10.05, 9.95];
        let b = [5.0, 5.2, 4.8, 5.1, 4.9];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_two_tailed < 0.01, "p {}", r.p_two_tailed);
        assert!(r.t > 0.0);
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&a, &a).unwrap();
        assert!(r.p_two_tailed > 0.95, "p {}", r.p_two_tailed);
        assert!(r.t.abs() < 1e-12);
    }

    #[test]
    fn constant_samples() {
        let a = [2.0, 2.0, 2.0];
        let b = [3.0, 3.0, 3.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert_eq!(r.p_two_tailed, 0.0);
        let r2 = welch_t_test(&a, &a).unwrap();
        assert_eq!(r2.p_two_tailed, 1.0);
    }

    #[test]
    fn small_samples_rejected() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn symmetry() {
        let a = [3.0, 3.5, 2.9, 3.2];
        let b = [2.0, 2.4, 2.2, 1.9];
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        assert!((r1.p_two_tailed - r2.p_two_tailed).abs() < 1e-12);
        assert!((r1.t + r2.t).abs() < 1e-12);
    }
}
