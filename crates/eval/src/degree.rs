//! Node-degree clustering for the paper's case study (Fig. 5, Table IX):
//! recommendation quality as a function of node degree.

use mhg_graph::{MultiplexGraph, NodeId};

/// A half-open degree bucket `[lo, hi)` with its member nodes.
#[derive(Clone, Debug)]
pub struct DegreeBucket {
    /// Inclusive lower degree bound.
    pub lo: usize,
    /// Exclusive upper degree bound.
    pub hi: usize,
    /// Nodes whose total degree falls in `[lo, hi)`.
    pub nodes: Vec<NodeId>,
}

impl DegreeBucket {
    /// Human-readable label, e.g. `"1≤d<20"`.
    pub fn label(&self) -> String {
        format!("{}≤d<{}", self.lo, self.hi)
    }
}

/// Splits `nodes` into `n_buckets` equal-width degree ranges over
/// `[min_degree, max_degree]` (total degree across relations), mirroring the
/// paper's Table IX ranges. Nodes with zero degree are dropped.
///
/// # Panics
///
/// Panics if `n_buckets == 0`.
pub fn degree_buckets(
    graph: &MultiplexGraph,
    nodes: &[NodeId],
    n_buckets: usize,
) -> Vec<DegreeBucket> {
    assert!(n_buckets > 0, "need at least one bucket");
    let degrees: Vec<(NodeId, usize)> = nodes
        .iter()
        .map(|&v| (v, graph.total_degree(v)))
        .filter(|&(_, d)| d > 0)
        .collect();
    if degrees.is_empty() {
        return Vec::new();
    }
    let min_d = degrees.iter().map(|&(_, d)| d).fold(usize::MAX, usize::min);
    let max_d = degrees.iter().map(|&(_, d)| d).fold(0, usize::max);
    let width = ((max_d - min_d + 1) as f64 / n_buckets as f64).ceil() as usize;
    let width = width.max(1);

    let mut buckets: Vec<DegreeBucket> = (0..n_buckets)
        .map(|i| DegreeBucket {
            lo: min_d + i * width,
            hi: min_d + (i + 1) * width,
            nodes: Vec::new(),
        })
        .collect();
    for (v, d) in degrees {
        let idx = ((d - min_d) / width).min(n_buckets - 1);
        buckets[idx].nodes.push(v);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_graph::{GraphBuilder, Schema};

    /// A star graph: center has degree n-1, leaves degree 1.
    fn star(n: usize) -> MultiplexGraph {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r = schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let center = b.add_node(t);
        for _ in 1..n {
            let leaf = b.add_node(t);
            b.add_edge(center, leaf, r);
        }
        b.build()
    }

    #[test]
    fn star_splits_center_from_leaves() {
        let g = star(20);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let buckets = degree_buckets(&g, &nodes, 4);
        assert_eq!(buckets.len(), 4);
        // Leaves (degree 1) in the first bucket, center (19) in the last.
        assert_eq!(buckets[0].nodes.len(), 19);
        assert_eq!(buckets[3].nodes.len(), 1);
        assert_eq!(buckets[3].nodes[0], NodeId(0));
    }

    #[test]
    fn buckets_cover_all_nonzero_nodes() {
        let g = star(15);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let buckets = degree_buckets(&g, &nodes, 3);
        let covered: usize = buckets.iter().map(|b| b.nodes.len()).sum();
        assert_eq!(covered, 15); // all nodes have degree > 0 in a star
    }

    #[test]
    fn zero_degree_dropped() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        b.add_node(t);
        let g = b.build();
        let buckets = degree_buckets(&g, &[NodeId(0)], 2);
        assert!(buckets.is_empty());
    }

    #[test]
    fn labels_are_readable() {
        let g = star(10);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let buckets = degree_buckets(&g, &nodes, 2);
        assert!(buckets[0].label().contains("≤d<"));
    }

    #[test]
    fn uniform_degrees_land_in_first_bucket() {
        // A cycle: every node degree 2 → everything in bucket 0.
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r = schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let ids: Vec<_> = (0..6).map(|_| b.add_node(t)).collect();
        for i in 0..6 {
            b.add_edge(ids[i], ids[(i + 1) % 6], r);
        }
        let g = b.build();
        let nodes: Vec<NodeId> = g.nodes().collect();
        let buckets = degree_buckets(&g, &nodes, 3);
        assert_eq!(buckets[0].nodes.len(), 6);
        assert!(buckets[1].nodes.is_empty());
    }
}
