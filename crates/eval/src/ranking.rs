//! Top-K recommendation metrics: PR@K (precision) and HR@K (hit ratio).
//!
//! The paper reports, for each node in the test set, the precision and hit
//! ratio of its top-K ranked candidates (K = 10). A query is one source
//! node; its candidates are every type-compatible target; relevants are its
//! held-out test edges.

/// One ranking query: the relevance flags of the candidate list sorted by
/// **descending** model score, plus the total number of relevant items.
#[derive(Clone, Debug)]
pub struct RankedQuery {
    /// `ranked[i]` is `true` iff the i-th highest-scored candidate is a
    /// held-out positive.
    pub ranked: Vec<bool>,
    /// Total number of relevant items for this query (may exceed
    /// `ranked.iter().filter(|x| **x).count()` if the candidate list was
    /// truncated).
    pub num_relevant: usize,
}

impl RankedQuery {
    /// Hits within the top K.
    pub fn hits_at(&self, k: usize) -> usize {
        self.ranked.iter().take(k).filter(|&&r| r).count()
    }

    /// Precision@K = hits / K.
    pub fn precision_at(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.hits_at(k) as f64 / k as f64
    }

    /// Hit-ratio@K (a.k.a. recall@K) = hits / #relevant.
    pub fn hit_ratio_at(&self, k: usize) -> f64 {
        if self.num_relevant == 0 {
            return 0.0;
        }
        self.hits_at(k) as f64 / self.num_relevant as f64
    }

    /// Normalised discounted cumulative gain at K (binary relevance).
    ///
    /// Not reported by the paper — provided for downstream users; the
    /// harness exposes it alongside PR@K/HR@K.
    pub fn ndcg_at(&self, k: usize) -> f64 {
        if self.num_relevant == 0 || k == 0 {
            return 0.0;
        }
        let dcg: f64 = self
            .ranked
            .iter()
            .take(k)
            .enumerate()
            .filter(|(_, &rel)| rel)
            .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
            .sum();
        let ideal: f64 = (0..self.num_relevant.min(k))
            .map(|i| 1.0 / ((i + 2) as f64).log2())
            .sum();
        dcg / ideal
    }

    /// Reciprocal rank of the first relevant item (0 when none appear).
    pub fn reciprocal_rank(&self) -> f64 {
        self.ranked
            .iter()
            .position(|&rel| rel)
            .map_or(0.0, |i| 1.0 / (i + 1) as f64)
    }
}

/// Aggregate top-K metrics over a set of queries.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TopKMetrics {
    /// Mean precision@K over queries.
    pub precision: f64,
    /// Mean hit-ratio@K over queries.
    pub hit_ratio: f64,
    /// Mean NDCG@K over queries (extension metric, not in the paper).
    pub ndcg: f64,
    /// Mean reciprocal rank over queries (extension metric).
    pub mrr: f64,
    /// Number of queries aggregated.
    pub num_queries: usize,
}

/// Computes mean PR@K and HR@K over queries (queries with zero relevants are
/// skipped, matching the paper's per-test-node averaging).
pub fn topk_metrics(queries: &[RankedQuery], k: usize) -> TopKMetrics {
    let valid: Vec<&RankedQuery> = queries.iter().filter(|q| q.num_relevant > 0).collect();
    if valid.is_empty() {
        return TopKMetrics::default();
    }
    let n = valid.len() as f64;
    TopKMetrics {
        precision: valid.iter().map(|q| q.precision_at(k)).sum::<f64>() / n,
        hit_ratio: valid.iter().map(|q| q.hit_ratio_at(k)).sum::<f64>() / n,
        ndcg: valid.iter().map(|q| q.ndcg_at(k)).sum::<f64>() / n,
        mrr: valid.iter().map(|q| q.reciprocal_rank()).sum::<f64>() / n,
        num_queries: valid.len(),
    }
}

/// Builds a [`RankedQuery`] from unsorted `(score, relevant)` candidate
/// pairs.
pub fn rank_candidates(mut candidates: Vec<(f32, bool)>, num_relevant: usize) -> RankedQuery {
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
    RankedQuery {
        ranked: candidates.into_iter().map(|(_, r)| r).collect(),
        num_relevant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_query() {
        let q = RankedQuery {
            ranked: vec![true, true, false, false],
            num_relevant: 2,
        };
        assert_eq!(q.hits_at(2), 2);
        assert!((q.precision_at(2) - 1.0).abs() < 1e-12);
        assert!((q.hit_ratio_at(2) - 1.0).abs() < 1e-12);
        assert!((q.precision_at(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_list() {
        let q = RankedQuery {
            ranked: vec![true],
            num_relevant: 3,
        };
        assert_eq!(q.hits_at(10), 1);
        assert!((q.precision_at(10) - 0.1).abs() < 1e-12);
        assert!((q.hit_ratio_at(10) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_skips_empty_queries() {
        let queries = vec![
            RankedQuery {
                ranked: vec![true, false],
                num_relevant: 1,
            },
            RankedQuery {
                ranked: vec![false, false],
                num_relevant: 0, // skipped
            },
        ];
        let m = topk_metrics(&queries, 2);
        assert_eq!(m.num_queries, 1);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.hit_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_descending() {
        let q = rank_candidates(
            vec![(0.1, false), (0.9, true), (0.5, false), (0.7, true)],
            2,
        );
        assert_eq!(q.ranked, vec![true, true, false, false]);
    }

    #[test]
    fn monotone_in_k() {
        // HR@K is non-decreasing in K; hits@K non-decreasing.
        let q = RankedQuery {
            ranked: vec![false, true, false, true, true],
            num_relevant: 4,
        };
        let mut prev = 0.0;
        for k in 1..=5 {
            let hr = q.hit_ratio_at(k);
            assert!(hr >= prev);
            prev = hr;
        }
    }

    #[test]
    fn ndcg_perfect_and_worst() {
        // Perfect ranking: NDCG@K = 1.
        let perfect = RankedQuery {
            ranked: vec![true, true, false, false],
            num_relevant: 2,
        };
        assert!((perfect.ndcg_at(4) - 1.0).abs() < 1e-12);
        // All relevants at the bottom: strictly less than 1, more than 0.
        let worst = RankedQuery {
            ranked: vec![false, false, true, true],
            num_relevant: 2,
        };
        let v = worst.ndcg_at(4);
        assert!(v > 0.0 && v < 1.0, "{v}");
        // No relevant in top-K at all.
        assert_eq!(worst.ndcg_at(2), 0.0);
    }

    #[test]
    fn reciprocal_rank_values() {
        let q = RankedQuery {
            ranked: vec![false, false, true],
            num_relevant: 1,
        };
        assert!((q.reciprocal_rank() - 1.0 / 3.0).abs() < 1e-12);
        let none = RankedQuery {
            ranked: vec![false, false],
            num_relevant: 1,
        };
        assert_eq!(none.reciprocal_rank(), 0.0);
    }

    #[test]
    fn aggregate_includes_extension_metrics() {
        let q = RankedQuery {
            ranked: vec![true, false],
            num_relevant: 1,
        };
        let m = topk_metrics(&[q], 2);
        assert!((m.ndcg - 1.0).abs() < 1e-12);
        assert!((m.mrr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let m = topk_metrics(&[], 10);
        assert_eq!(m.num_queries, 0);
        assert_eq!(m.precision, 0.0);
    }
}
