//! Evaluation metrics for the HybridGNN reproduction.
//!
//! Everything the paper's evaluation section reports:
//!
//! * [`roc_auc`], [`pr_auc`], [`f1_at`] / [`best_f1_threshold`] — the link
//!   prediction metrics of Tables IV–V;
//! * [`topk_metrics`] (PR@K / HR@K) — the top-K recommendation metrics;
//! * [`welch_t_test`] — the `p < 0.01` significance check;
//! * [`degree_buckets`] — the degree-cluster case study (Fig. 5, Table IX).
//!
//! # Example
//!
//! ```
//! use mhg_eval::{roc_auc, pr_auc};
//!
//! let scores = [0.9, 0.8, 0.3, 0.1];
//! let labels = [true, true, false, false];
//! assert_eq!(roc_auc(&scores, &labels), 1.0);
//! assert_eq!(pr_auc(&scores, &labels), 1.0);
//! ```

mod classification;
mod degree;
mod ranking;
mod stats;

pub use classification::{best_f1_threshold, f1_at, pr_auc, roc_auc};
pub use degree::{degree_buckets, DegreeBucket};
pub use ranking::{rank_candidates, topk_metrics, RankedQuery, TopKMetrics};
pub use stats::{mean, std_dev, variance, welch_t_test, TTest};
