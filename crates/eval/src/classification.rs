//! Binary-classification metrics: ROC-AUC, PR-AUC, F1.

/// ROC-AUC via the rank-sum (Mann–Whitney) formulation with midranks for
/// tied scores.
///
/// Returns 0.5 when either class is empty (no ranking information).
///
/// # Panics
///
/// Panics if `scores.len() != labels.len()`.
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }

    // Sort indices by score ascending; assign midranks to ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based: positions i..=j share midrank.
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }

    let n_pos_f = n_pos as f64;
    let n_neg_f = n_neg as f64;
    (rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0) / (n_pos_f * n_neg_f)
}

/// Area under the precision-recall curve (trapezoidal over distinct score
/// thresholds, anchored at recall 0 with the first precision value).
///
/// Returns the positive prevalence when either class is empty.
///
/// # Panics
///
/// Panics if `scores.len() != labels.len()`.
pub fn pr_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    if n_pos == 0 {
        return 0.0;
    }
    if n_pos == labels.len() {
        return 1.0;
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut auc = 0.0f64;
    let mut prev_recall = 0.0f64;
    let mut prev_precision = 1.0f64;

    let mut i = 0;
    while i < order.len() {
        // Consume a tie-group at once so ties don't inflate the curve.
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        for &idx in &order[i..=j] {
            if labels[idx] {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        let recall = tp as f64 / n_pos as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        auc += (recall - prev_recall) * (precision + prev_precision) / 2.0;
        prev_recall = recall;
        prev_precision = precision;
        i = j + 1;
    }
    auc
}

/// F1 at a fixed decision threshold (`score >= threshold` predicts
/// positive).
pub fn f1_at(scores: &[f32], labels: &[bool], threshold: f32) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&s, &l) in scores.iter().zip(labels) {
        let pred = s >= threshold;
        match (pred, l) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fn_) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// The threshold (drawn from the observed scores) maximising F1, with the
/// achieved F1. Use validation scores to select, test scores to report.
pub fn best_f1_threshold(scores: &[f32], labels: &[bool]) -> (f32, f64) {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let mut candidates: Vec<f32> = scores.to_vec();
    candidates.sort_by(f32::total_cmp);
    candidates.dedup();
    let mut best = (0.0f32, 0.0f64);
    for &t in &candidates {
        let f1 = f1_at(scores, labels, t);
        if f1 > best.1 {
            best = (t, f1);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-9);
        assert!((pr_auc(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_ranking() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(roc_auc(&scores, &labels).abs() < 1e-9);
    }

    #[test]
    fn random_ranking_is_half() {
        // All scores tied → AUC must be exactly 0.5 via midranks.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn known_auc_value() {
        // scores: pos {3, 1}, neg {2, 0}: pairs (3>2),(3>0),(1<2),(1>0) → 3/4.
        let scores = [3.0, 1.0, 2.0, 0.0];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(pr_auc(&[1.0, 2.0], &[false, false]), 0.0);
        assert_eq!(pr_auc(&[1.0, 2.0], &[true, true]), 1.0);
    }

    #[test]
    fn f1_known_value() {
        // threshold 0.5: preds [T,T,F], labels [T,F,T] → tp=1, fp=1, fn=1 →
        // precision 0.5, recall 0.5, F1 0.5.
        let scores = [0.9, 0.6, 0.3];
        let labels = [true, false, true];
        assert!((f1_at(&scores, &labels, 0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn best_threshold_beats_fixed() {
        let scores = [0.9, 0.8, 0.75, 0.2, 0.1];
        let labels = [true, true, true, false, false];
        let (t, f1) = best_f1_threshold(&scores, &labels);
        assert!((f1 - 1.0).abs() < 1e-9, "best f1 {f1} at {t}");
        assert!(t > 0.2 && t <= 0.75);
    }

    #[test]
    fn f1_zero_when_no_tp() {
        let scores = [0.1, 0.2];
        let labels = [true, true];
        assert_eq!(f1_at(&scores, &labels, 0.9), 0.0);
    }

    #[test]
    fn pr_auc_better_than_prevalence_for_good_ranker() {
        let scores = [0.9, 0.7, 0.6, 0.4, 0.3, 0.2, 0.15, 0.1];
        let labels = [true, true, false, true, false, false, false, false];
        let auc = pr_auc(&scores, &labels);
        assert!(auc > 3.0 / 8.0, "pr-auc {auc}");
    }
}
