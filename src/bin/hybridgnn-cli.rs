//! `hybridgnn-cli` — train and serve HybridGNN on graph snapshots.
//!
//! Subcommands:
//!
//! ```text
//! hybridgnn-cli generate  --dataset taobao --scale 0.05 --out graph.mhg
//! hybridgnn-cli stats     --graph graph.mhg
//! hybridgnn-cli train     --graph graph.mhg --out model.emb \
//!                         [--epochs 20 --dim 64 --seed 42 --shapes user-item-user,item-user-item]
//! hybridgnn-cli recommend --graph graph.mhg --model model.emb \
//!                         --node 17 --relation purchase --k 10
//! ```
//!
//! `generate` materialises one of the five paper datasets; `train` fits
//! HybridGNN on an 85/5/10 split, reports held-out metrics, and saves the
//! per-relation embedding tables; `recommend` ranks type-compatible
//! candidates for a node under a relation.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use bytes::{Buf, BufMut, BytesMut};
use hybridgnn_repro::datasets::{DatasetKind, EdgeSplit, SyntheticTier};
use hybridgnn_repro::eval;
use hybridgnn_repro::graph::{
    persist, GraphStats, MultiplexGraph, NodeId, NodeTypeId, RelationId, ShardedCsr,
    ShardedCsrOptions,
};
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EMB_MAGIC: &[u8; 4] = b"MHE1";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "train" => cmd_train(&flags),
        "recommend" => cmd_recommend(&flags),
        "graph-fsck" => cmd_graph_fsck(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: hybridgnn-cli <generate|stats|train|recommend|graph-fsck> [flags]
  generate   --dataset <name> --out <file.mhg> [--scale f] [--seed n]
  stats      --graph <file.mhg>
  train      --graph <file.mhg> --out <file.emb> [--epochs n] [--dim n]
             [--seed n] [--shapes type-type-type,...]
             [--checkpoint-dir dir] [--checkpoint-every n] [--resume true]
             [--metrics-out <file.jsonl>]
  recommend  --graph <file.mhg> --model <file.emb> --node <id>
             --relation <name> [--k n]
  graph-fsck --dir <store-dir> [--repair true]
             [--source-graph <file.mhg> | --source-tier taobao [--scale f] [--seed n]]";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i + 1 < args.len() + 1 {
        if let Some(key) = args.get(i).and_then(|a| a.strip_prefix("--")) {
            if let Some(value) = args.get(i + 1) {
                out.insert(key.to_string(), value.clone());
            }
        }
        i += 2;
    }
    out
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: {v}")),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = required(flags, "dataset")?;
    let out: PathBuf = required(flags, "out")?.into();
    let scale: f64 = parsed(flags, "scale", 0.05)?;
    let seed: u64 = parsed(flags, "seed", 42)?;
    let kind = DatasetKind::parse(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let dataset = kind.generate(scale, seed);
    persist::save(&dataset.graph, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges) to {}",
        kind.name(),
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        out.display()
    );
    println!(
        "metapath shapes: {}",
        shapes_to_string(&dataset.graph, &dataset.metapath_shapes)
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let graph = load_graph(flags)?;
    println!("{}", GraphStats::compute(&graph));
    println!("node types: {:?}", graph.schema().node_type_names());
    println!("relations:  {:?}", graph.schema().relation_names());
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let graph = load_graph(flags)?;
    let out: PathBuf = required(flags, "out")?.into();
    let seed: u64 = parsed(flags, "seed", 42)?;
    let epochs: usize = parsed(flags, "epochs", 15)?;
    let dim: usize = parsed(flags, "dim", 64)?;

    let shapes = match flags.get("shapes") {
        Some(spec) => parse_shapes(&graph, spec)?,
        None => default_shapes(&graph),
    };
    if shapes.is_empty() {
        return Err("no metapath shapes (pass --shapes type-type-type,...)".into());
    }
    println!("metapath shapes: {}", shapes_to_string(&graph, &shapes));

    let mut rng = StdRng::seed_from_u64(seed);
    let split = EdgeSplit::default_split(&graph, &mut rng);

    let mut config = HybridConfig::default();
    config.common.epochs = epochs;
    config.common.dim = dim;
    config.common.checkpoint_every = parsed(flags, "checkpoint-every", 0)?;
    config.common.checkpoint_dir = flags.get("checkpoint-dir").map(PathBuf::from);
    config.common.resume = parsed(flags, "resume", false)?;
    if config.common.checkpoint_dir.is_some() && config.common.checkpoint_every == 0 {
        config.common.checkpoint_every = 1;
    }
    if let Some(path) = flags.get("metrics-out") {
        let mut oc = hybridgnn_repro::obs::ObsConfig::from_env();
        oc.jsonl = Some(PathBuf::from(path));
        config.common.obs = oc.build();
    }
    let obs = config.common.obs.clone();
    let mut model = HybridGnn::new(config);
    let report = model
        .fit(
            &FitData {
                graph: &split.train_graph,
                metapath_shapes: &shapes,
                val: &split.val,
            },
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
    if let Some(resumed) = report.recovery.resumed_from {
        println!("resumed from checkpoint at epoch {resumed}");
    }
    println!(
        "trained {} epochs (best val ROC-AUC {:.4})",
        report.epochs_run, report.best_val_auc
    );

    let scores: Vec<f32> = split
        .test
        .iter()
        .map(|e| model.score(e.u, e.v, e.relation))
        .collect();
    let labels: Vec<bool> = split.test.iter().map(|e| e.label).collect();
    println!(
        "held-out test: ROC-AUC {:.4}, PR-AUC {:.4}",
        eval::roc_auc(&scores, &labels),
        eval::pr_auc(&scores, &labels)
    );

    save_embeddings(&model, &graph, &out)?;
    println!("wrote embeddings to {}", out.display());
    if let Some(path) = obs.finish().map_err(|e| e.to_string())? {
        println!("metrics written to {}", path.display());
    }
    Ok(())
}

fn cmd_recommend(flags: &HashMap<String, String>) -> Result<(), String> {
    let graph = load_graph(flags)?;
    let model_path: PathBuf = required(flags, "model")?.into();
    let node_id: u32 = required(flags, "node")?
        .trim_start_matches('n')
        .parse()
        .map_err(|_| "invalid --node id".to_string())?;
    let rel_name = required(flags, "relation")?;
    let k: usize = parsed(flags, "k", 10)?;

    if node_id as usize >= graph.num_nodes() {
        return Err(format!("node {node_id} out of range"));
    }
    let node = NodeId(node_id);
    let relation = graph
        .schema()
        .relation_id(rel_name)
        .ok_or_else(|| format!("unknown relation {rel_name:?}"))?;

    let tables = load_embeddings(&model_path, &graph)?;
    let table = &tables[relation.index()];

    // Candidate targets: the node types observed opposite `node`'s type
    // under this relation (e.g. items for a user under page-view); all
    // other nodes if the relation carries no such evidence.
    let source_ty = graph.node_type(node);
    let mut target_types: Vec<NodeTypeId> = Vec::new();
    for (u, v) in graph.edges_in(relation).take(5000) {
        for (a, b) in [(u, v), (v, u)] {
            if graph.node_type(a) == source_ty && !target_types.contains(&graph.node_type(b)) {
                target_types.push(graph.node_type(b));
            }
        }
    }
    let source_row = &table[node.index()];
    let mut scored: Vec<(NodeId, f32)> = graph
        .nodes()
        .filter(|&v| v != node && !graph.has_edge(node, v, relation))
        .filter(|&v| target_types.is_empty() || target_types.contains(&graph.node_type(v)))
        .map(|v| {
            let dot: f32 = source_row
                .iter()
                .zip(&table[v.index()])
                .map(|(a, b)| a * b)
                .sum();
            (v, dot)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("top-{k} {rel_name} recommendations for {node}:");
    for (rank, (v, score)) in scored.iter().take(k).enumerate() {
        println!(
            "  {:>2}. {v} ({})  score {score:+.4}",
            rank + 1,
            graph.schema().node_type_name(graph.node_type(*v))
        );
    }
    Ok(())
}

/// `graph-fsck`: verify every shard of a sharded store against its
/// checksums and manifest, optionally rebuilding corrupt shards in place
/// from a re-streamable edge source. Exits nonzero while any shard remains
/// corrupt, so the command doubles as a CI health check.
fn cmd_graph_fsck(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir: PathBuf = required(flags, "dir")?.into();
    let repair: bool = parsed(flags, "repair", false)?;
    let mut store = ShardedCsr::open(&dir, ShardedCsrOptions::default())
        .map_err(|e| format!("opening {}: {e}", dir.display()))?;
    if let Some(path) = flags.get("source-graph") {
        let source = persist::load(PathBuf::from(path))
            .map_err(|e| format!("loading source graph {path}: {e}"))?;
        store = store.with_heal_source(Arc::new(source));
    } else if let Some(tier) = flags.get("source-tier") {
        if tier != "taobao" {
            return Err(format!("unknown --source-tier {tier:?} (only taobao)"));
        }
        let scale: f64 = parsed(flags, "scale", 1.0)?;
        let seed: u64 = parsed(flags, "seed", 2022)?;
        store = store.with_heal_source(Arc::new(SyntheticTier::taobao(scale, seed)));
    }

    let report = store.verify_all();
    println!(
        "graph-fsck: checked {} shard(s), {} corrupt",
        report.checked,
        report.corrupt.len()
    );
    for f in &report.corrupt {
        println!("  r{}-s{}: {}", f.relation, f.shard, f.error);
    }
    if report.is_clean() {
        println!("store is clean");
        return Ok(());
    }
    if !repair {
        return Err(format!(
            "{} corrupt shard(s); re-run with --repair true and a \
             --source-graph/--source-tier to rebuild them",
            report.corrupt.len()
        ));
    }
    let outcome = store.repair();
    for (r, s) in &outcome.repaired {
        println!("  repaired r{r}-s{s} (checksum re-verified from disk)");
    }
    for f in &outcome.failed {
        println!("  UNREPAIRED r{}-s{}: {}", f.relation, f.shard, f.error);
    }
    if outcome.is_complete() {
        println!("all corrupt shards repaired");
        Ok(())
    } else {
        Err(format!(
            "{} shard(s) could not be repaired (quarantine state: {:?})",
            outcome.failed.len(),
            store.quarantined()
        ))
    }
}

fn load_graph(flags: &HashMap<String, String>) -> Result<MultiplexGraph, String> {
    let path: PathBuf = required(flags, "graph")?.into();
    persist::load(&path).map_err(|e| format!("loading {}: {e}", path.display()))
}

/// Default shapes: every 3-hop `a-b-a` combination over connected type
/// pairs (covers the Table II shapes for all five generators).
fn default_shapes(graph: &MultiplexGraph) -> Vec<Vec<NodeTypeId>> {
    let schema = graph.schema();
    let mut connected: Vec<(NodeTypeId, NodeTypeId)> = Vec::new();
    for r in schema.relations() {
        for (u, v) in graph.edges_in(r).take(2000) {
            let (a, b) = (graph.node_type(u), graph.node_type(v));
            if !connected.contains(&(a, b)) {
                connected.push((a, b));
            }
            if !connected.contains(&(b, a)) {
                connected.push((b, a));
            }
        }
    }
    connected.into_iter().map(|(a, b)| vec![a, b, a]).collect()
}

fn parse_shapes(graph: &MultiplexGraph, spec: &str) -> Result<Vec<Vec<NodeTypeId>>, String> {
    spec.split(',')
        .map(|shape| {
            shape
                .split('-')
                .map(|ty| {
                    graph
                        .schema()
                        .node_type_id(ty)
                        .ok_or_else(|| format!("unknown node type {ty:?} in --shapes"))
                })
                .collect::<Result<Vec<_>, _>>()
        })
        .collect()
}

fn shapes_to_string(graph: &MultiplexGraph, shapes: &[Vec<NodeTypeId>]) -> String {
    shapes
        .iter()
        .map(|s| {
            s.iter()
                .map(|&t| graph.schema().node_type_name(t))
                .collect::<Vec<_>>()
                .join("-")
        })
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------
// Embedding persistence: one f32 table per relation.
// ---------------------------------------------------------------------

fn save_embeddings(
    model: &HybridGnn,
    graph: &MultiplexGraph,
    path: &PathBuf,
) -> Result<(), String> {
    let n = graph.num_nodes();
    let num_rel = graph.schema().num_relations();
    let dim = model.embedding(NodeId(0), RelationId(0)).len();
    let mut buf = BytesMut::with_capacity(16 + num_rel * n * dim * 4);
    buf.put_slice(EMB_MAGIC);
    buf.put_u32_le(num_rel as u32);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(dim as u32);
    for r in graph.schema().relations() {
        for v in graph.nodes() {
            for &x in model.embedding(v, r) {
                buf.put_f32_le(x);
            }
        }
    }
    std::fs::write(path, &buf).map_err(|e| e.to_string())
}

#[allow(clippy::type_complexity)]
fn load_embeddings(path: &PathBuf, graph: &MultiplexGraph) -> Result<Vec<Vec<Vec<f32>>>, String> {
    let data = std::fs::read(path).map_err(|e| e.to_string())?;
    let mut buf = data.as_slice();
    if buf.remaining() < 16 {
        return Err("embedding file truncated".into());
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != EMB_MAGIC {
        return Err("not an embedding file (bad magic)".into());
    }
    let num_rel = buf.get_u32_le() as usize;
    let n = buf.get_u32_le() as usize;
    let dim = buf.get_u32_le() as usize;
    if num_rel != graph.schema().num_relations() || n != graph.num_nodes() {
        return Err(format!(
            "embedding file shape ({num_rel} relations × {n} nodes) does not match the graph"
        ));
    }
    if buf.remaining() < num_rel * n * dim * 4 {
        return Err("embedding file truncated".into());
    }
    let mut tables = Vec::with_capacity(num_rel);
    for _ in 0..num_rel {
        let mut table = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                row.push(buf.get_f32_le());
            }
            table.push(row);
        }
        tables.push(table);
    }
    Ok(tables)
}
