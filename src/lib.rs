//! Facade crate for the HybridGNN (ICDE 2022) reproduction.
//!
//! Re-exports the full workspace API so examples and downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — multiplex heterogeneous graphs, schemas, metapaths.
//! * [`sampling`] — walkers, the randomized inter-relationship explorer,
//!   neighbor and negative samplers.
//! * [`datasets`] — the five synthetic paper datasets and edge splits.
//! * [`models`] — the nine baselines behind the [`models::LinkPredictor`]
//!   trait.
//! * [`model`] — HybridGNN itself.
//! * [`eval`] — ROC-AUC / PR-AUC / F1 / PR@K / HR@K and the t-test.
//! * [`tensor`] / [`autograd`] — the numeric substrate.
//! * [`par`] — the deterministic worker pool behind the kernels
//!   (`MHG_THREADS`).
//! * [`ckpt`] — versioned, checksummed, atomically-written training
//!   checkpoints (see DESIGN.md §2.11).
//! * [`faults`] — the deterministic fault-injection harness (`MHG_FAULTS`).
//! * [`obs`] — counters, histograms, span timers and the `metrics.jsonl`
//!   sink (`MHG_OBS`, `--metrics-out`; see DESIGN.md §2.12).
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

pub use hybridgnn as model;
pub use mhg_autograd as autograd;
pub use mhg_ckpt as ckpt;
pub use mhg_datasets as datasets;
pub use mhg_eval as eval;
pub use mhg_faults as faults;
pub use mhg_graph as graph;
pub use mhg_models as models;
pub use mhg_obs as obs;
pub use mhg_par as par;
pub use mhg_sampling as sampling;
pub use mhg_tensor as tensor;
