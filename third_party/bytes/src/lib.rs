//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this hand-written shim. It covers the little-endian codec surface used by
//! `mhg-graph::persist` and the CLI: [`Buf`] over `&[u8]`, [`BufMut`] over
//! [`BytesMut`]/`Vec<u8>`, and an owned [`Bytes`] buffer. Unlike upstream it
//! does not do zero-copy reference counting — `Bytes` is a plain `Vec<u8>`
//! wrapper — which is irrelevant for the snapshot codec workload.

use std::ops::{Deref, DerefMut};

/// Read cursor over a byte buffer.
///
/// Implemented for `&[u8]`: every `get_*` consumes from the front of the
/// slice, mirroring upstream `bytes`. All `get_*` methods panic when fewer
/// than the required bytes remain (callers guard with [`Buf::remaining`]).
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer; freeze into an immutable [`Bytes`] when done.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Immutable owned byte buffer. Dereferences to `[u8]`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { inner: Vec::new() }
    }

    /// Wraps an owned vector without copying.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Bytes { inner: v }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: v }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { inner: v.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_f32_le(3.5);
        buf.put_f64_le(-0.125);
        buf.put_slice(b"tail");
        let frozen = buf.freeze();

        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16_le(), 0x1234);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(rd.get_f32_le(), 3.5);
        assert_eq!(rd.get_f64_le(), -0.125);
        let mut tail = [0u8; 4];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1, 2];
        let _ = rd.get_u32_le();
    }

    #[test]
    fn slicing_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.len(), 4);
    }
}
