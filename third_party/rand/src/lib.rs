//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this hand-written shim instead. It implements exactly the surface the
//! repository uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`]/[`Rng::gen_range`]/[`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`] — backed by the xoshiro256++ generator.
//!
//! It is *not* a cryptographic RNG and makes no claim of producing the same
//! streams as upstream `rand`; the repo only relies on determinism per seed,
//! which this shim guarantees.

/// Low-level generator interface: a source of random `u64` words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word in the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator's "standard" distribution:
    /// unit interval for floats, full range for integers, fair coin for bool.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i32
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Types with a uniform sampler over half-open and closed intervals.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics if the interval is empty.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let draw = (rng.next_u64() as u128) % (span as u128);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
///
/// A single blanket impl per range shape (mirroring upstream `rand`) so the
/// compiler unifies the range's literal type with the call site:
/// `x + rng.gen_range(0..3)` infers the literal's type from `x`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty, matching upstream `rand` behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fills a mutable slice with standard samples.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    ///
    /// Seeded via SplitMix64 so that nearby `u64` seeds yield uncorrelated
    /// streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl StdRng {
        /// Exports the raw generator state (for checkpointing). Restoring
        /// via [`StdRng::from_state`] continues the exact same stream.
        pub fn to_state(&self) -> [u64; 4] {
            self.state
        }

        /// Rebuilds a generator from a state exported by
        /// [`StdRng::to_state`].
        pub fn from_state(state: [u64; 4]) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.state = n;
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngCore};

    /// Extension trait over slices: shuffling and random element choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(
            same < 4,
            "streams should be uncorrelated, {same} collisions"
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&y));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
