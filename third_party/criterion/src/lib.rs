//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this hand-written shim. It implements the surface used by the repo's
//! benches — [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`] — with a simple
//! median-of-samples timer instead of upstream's statistical machinery.

use std::time::Instant;

pub use std::hint::black_box;

/// Times closures and reports per-iteration latency.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        body(&mut bencher);
        println!("bench {name:<44} {:>12.1} ns/iter", bencher.median_ns);
        self
    }

    /// Opens a named group; benchmarks run as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of related benchmarks with shared settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        body(&mut bencher);
        let label = format!("{}/{}", self.name, name);
        println!("bench {label:<44} {:>12.1} ns/iter", bencher.median_ns);
        self
    }

    /// Ends the group. Upstream emits summary statistics here; the shim
    /// keeps it for API compatibility.
    pub fn finish(self) {}
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, recording the median over the configured samples.
    ///
    /// Each sample runs enough iterations to amortise timer resolution
    /// (at least 1, targeting ~1 ms per sample after a calibration pass).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibration: find an iteration count that takes ≥ ~1 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed.as_micros() >= 1000 || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(2u64.wrapping_mul(3)));
        });
        assert!(ran);
    }
}
