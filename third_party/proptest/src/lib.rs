//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this hand-written shim. It supports the surface the repository's property
//! tests use: the [`proptest!`] macro (with optional `#![proptest_config]`),
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range / tuple /
//! [`strategy::Just`] / [`prop_oneof!`] / [`collection::vec`] strategies,
//! `any::<T>()`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test path) rather than system entropy, and
//! failing inputs are **not shrunk** — the failure message reports the case
//! seed so the exact input can be replayed.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait: types with a canonical strategy.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "anything goes" strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value of `Self`.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_via_standard!(bool, u8, u32, u64, usize, i32, i64, f32, f64);

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<bool>()`, `any::<u64>()`, …
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not the
/// whole process) so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values compare equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values compare unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
}

/// Discards the current case (without failing) when an assumption is not met.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniformly picks one of several same-valued strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy),)+
        ])
    };
}

/// Declares property tests. Mirrors upstream `proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            $crate::test_runner::run(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, __rng);
                    (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
