//! The case-execution loop behind the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a single generated case can fail.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; fails the whole test.
    Fail(String),
    /// An assumption was not met; the case is discarded and regenerated.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config demanding `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the repo's model-training properties are
        // compute-bound, so the shim uses a smaller deterministic default.
        ProptestConfig { cases: 64 }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs `body` until `config.cases` cases pass, panicking on the first
/// failure. The RNG for attempt `i` of test `name` is seeded with
/// `fnv1a(name) ^ (i * GOLDEN_GAMMA)`, so failures are replayable without a
/// regression file.
pub fn run<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let max_rejects = (config.cases as u64) * 64 + 256;
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let mut attempt = 0u64;

    while passed < config.cases {
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        attempt += 1;
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} passes) — \
                         assumption is unsatisfiable in practice"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {passed} \
                     (attempt {attempt}, rng seed {seed:#018x}): {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0;
        run(ProptestConfig::with_cases(17), "runner::count", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn rejects_are_retried_not_counted() {
        let mut total = 0u32;
        run(ProptestConfig::with_cases(5), "runner::rejects", |rng| {
            total += 1;
            // Reject roughly half the attempts.
            if (0usize..2).generate(rng) == 0 {
                Err(TestCaseError::reject("coin"))
            } else {
                Ok(())
            }
        });
        assert!(total > 5, "some attempts must have been rejected");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run(ProptestConfig::with_cases(3), "runner::fail", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        let collect = || {
            let mut vals = Vec::new();
            run(ProptestConfig::with_cases(10), "runner::det", |rng| {
                vals.push((0u64..1_000_000).generate(rng));
                Ok(())
            });
            vals
        };
        assert_eq!(collect(), collect());
    }
}
