//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG state to a value. Unlike
//! upstream proptest there is no shrinking tree; `generate` returns the value
//! directly.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for producing random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with a pure function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a function producing a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Boxes a strategy as a trait object; used by [`crate::prop_oneof!`].
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Admissible length specifications for [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty vec size range");
        SizeRange {
            lo,
            hi_exclusive: hi + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`: vectors with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
