#!/bin/bash
# Regenerates every table/figure of the paper at CPU-friendly scales
# (1-vCPU machine: scales/epochs trimmed; see results/README.md).
set -x
cd /root/repo
B=target/release
$B/exp_datasets --scale 1.0                                       > results/table2_datasets.txt 2>&1
$B/exp_table5   --scale 0.05 --epochs 10                          > results/table5.txt 2>&1
$B/exp_table4   --scale 0.05 --epochs 10                          > results/table4.txt 2>&1
$B/exp_table7   --scale 0.15 --epochs 10 --datasets YouTube       > results/table7_uplift.txt 2>&1
$B/exp_table8   --scale 0.04 --epochs 8 --datasets YouTube,Taobao > results/table8_ablation.txt 2>&1
$B/exp_table6   --scale 0.04 --epochs 8 --datasets Amazon,Taobao  > results/table6_depth.txt 2>&1
$B/exp_fig4     --scale 0.04 --epochs 10                          > results/fig4_attention.txt 2>&1
$B/exp_fig5     --scale 0.05 --epochs 10                          > results/fig5_degree.txt 2>&1
$B/exp_table9   --scale 0.08 --epochs 10                          > results/table9_degree.txt 2>&1
$B/exp_fig3     --scale 0.025 --epochs 6 --datasets Taobao        > results/fig3_sensitivity.txt 2>&1
echo ALL_DONE
